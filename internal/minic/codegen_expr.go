package minic

// Statement generation.

func (g *gen) stmts(list []*stmt, epilogue string) error {
	for _, st := range list {
		if err := g.stmt(st, epilogue); err != nil {
			return err
		}
	}
	return nil
}

func (g *gen) stmt(st *stmt, epilogue string) error {
	switch st.op {
	case sExpr:
		v, err := g.expr(st.expr)
		if err != nil {
			return err
		}
		g.free(v)
		return nil
	case sDecl:
		if st.init == nil {
			return nil
		}
		lhs := &expr{op: eVar, line: st.line, sval: st.decl.name, sym: st.decl, ty: st.decl.ty}
		v, err := g.assign(lhs, st.init, st.line)
		if err != nil {
			return err
		}
		g.free(v)
		return nil
	case sIf:
		els := g.newLabel()
		end := els
		if err := g.branchFalse(st.cond, els); err != nil {
			return err
		}
		if err := g.stmts(st.body, epilogue); err != nil {
			return err
		}
		if len(st.elseBody) > 0 {
			end = g.newLabel()
			g.emit("j %s", end)
			g.label(els)
			if err := g.stmts(st.elseBody, epilogue); err != nil {
				return err
			}
		}
		g.label(end)
		return nil
	case sWhile, sFor:
		body, cond, end := g.newLabel(), g.newLabel(), g.newLabel()
		contTo := cond
		if st.op == sFor {
			if st.forInit != nil {
				if err := g.stmt(st.forInit, epilogue); err != nil {
					return err
				}
			}
			if st.forPost != nil {
				contTo = g.newLabel()
			}
		}
		g.emit("j %s", cond)
		g.label(body)
		g.breakLbl = append(g.breakLbl, end)
		g.continueLbl = append(g.continueLbl, contTo)
		if err := g.stmts(st.body, epilogue); err != nil {
			return err
		}
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.continueLbl = g.continueLbl[:len(g.continueLbl)-1]
		if st.op == sFor && st.forPost != nil {
			g.label(contTo)
			if err := g.stmt(st.forPost, epilogue); err != nil {
				return err
			}
		}
		g.label(cond)
		if st.cond == nil {
			g.emit("j %s", body)
		} else if err := g.branchTrue(st.cond, body); err != nil {
			return err
		}
		g.label(end)
		return nil
	case sReturn:
		if st.expr != nil {
			v, err := g.expr(st.expr)
			if err != nil {
				return err
			}
			if v.fp {
				g.emit("fmov $f0, %s", g.rn(v))
			} else {
				g.emit("move $v0, %s", g.rn(v))
			}
			g.free(v)
		}
		g.emit("j %s", epilogue)
		return nil
	case sDoWhile:
		body, cond, end := g.newLabel(), g.newLabel(), g.newLabel()
		g.label(body)
		g.breakLbl = append(g.breakLbl, end)
		g.continueLbl = append(g.continueLbl, cond)
		if err := g.stmts(st.body, epilogue); err != nil {
			return err
		}
		g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
		g.continueLbl = g.continueLbl[:len(g.continueLbl)-1]
		g.label(cond)
		if err := g.branchTrue(st.cond, body); err != nil {
			return err
		}
		g.label(end)
		return nil
	case sBreak:
		g.emit("j %s", g.breakLbl[len(g.breakLbl)-1])
		return nil
	case sContinue:
		g.emit("j %s", g.continueLbl[len(g.continueLbl)-1])
		return nil
	case sBlock:
		return g.stmts(st.body, epilogue)
	}
	return errf(st.line, "internal: unknown statement op")
}

// Branch generation with direct comparison fusion.

func (g *gen) branchTrue(cond *expr, target string) error {
	return g.branch(cond, target, true)
}

func (g *gen) branchFalse(cond *expr, target string) error {
	return g.branch(cond, target, false)
}

var cmpBranch = map[exprOp]struct{ pos, neg string }{
	eLt: {"blt", "bge"},
	eLe: {"ble", "bgt"},
	eGt: {"bgt", "ble"},
	eGe: {"bge", "blt"},
	eEq: {"beq", "bne"},
	eNe: {"bne", "beq"},
}

func (g *gen) branch(cond *expr, target string, whenTrue bool) error {
	switch cond.op {
	case eLt, eLe, eGt, eGe, eEq, eNe:
		l, r := cond.lhs.ty.decay(), cond.rhs.ty.decay()
		if l.kind == tyDouble || r.kind == tyDouble {
			return g.fpCmpBranch(cond, target, whenTrue)
		}
		lv, err := g.expr(cond.lhs)
		if err != nil {
			return err
		}
		rv, err := g.expr(cond.rhs)
		if err != nil {
			return err
		}
		br := cmpBranch[cond.op]
		op := br.pos
		if !whenTrue {
			op = br.neg
		}
		g.emit("%s %s, %s, %s", op, g.rn(lv), g.rn(rv), target)
		g.free(lv)
		g.free(rv)
		return nil
	case eLAnd:
		if whenTrue {
			skip := g.newLabel()
			if err := g.branchFalse(cond.lhs, skip); err != nil {
				return err
			}
			if err := g.branchTrue(cond.rhs, target); err != nil {
				return err
			}
			g.label(skip)
			return nil
		}
		if err := g.branchFalse(cond.lhs, target); err != nil {
			return err
		}
		return g.branchFalse(cond.rhs, target)
	case eLOr:
		if whenTrue {
			if err := g.branchTrue(cond.lhs, target); err != nil {
				return err
			}
			return g.branchTrue(cond.rhs, target)
		}
		skip := g.newLabel()
		if err := g.branchTrue(cond.lhs, skip); err != nil {
			return err
		}
		if err := g.branchFalse(cond.rhs, target); err != nil {
			return err
		}
		g.label(skip)
		return nil
	case eNot:
		return g.branch(cond.lhs, target, !whenTrue)
	}
	v, err := g.expr(cond)
	if err != nil {
		return err
	}
	if v.fp {
		// Compare against 0.0.
		z, err := g.allocFP(cond.line)
		if err != nil {
			return err
		}
		g.emit("mtc1 %s, $zero", g.rn(z))
		g.emit("cvtdw %s, %s", g.rn(z), g.rn(z))
		g.emit("fceq %s, %s", g.rn(v), g.rn(z))
		g.free(z)
		if whenTrue {
			g.emit("bc1f %s", target)
		} else {
			g.emit("bc1t %s", target)
		}
	} else if whenTrue {
		g.emit("bnez %s, %s", g.rn(v), target)
	} else {
		g.emit("beqz %s, %s", g.rn(v), target)
	}
	g.free(v)
	return nil
}

// fpCmpBranch compares doubles via the FP condition flag.
func (g *gen) fpCmpBranch(cond *expr, target string, whenTrue bool) error {
	lv, err := g.expr(cond.lhs)
	if err != nil {
		return err
	}
	rv, err := g.expr(cond.rhs)
	if err != nil {
		return err
	}
	// Map to fclt/fcle/fceq with operand swaps.
	var op string
	a, b := lv, rv
	sense := whenTrue
	switch cond.op {
	case eLt:
		op = "fclt"
	case eLe:
		op = "fcle"
	case eGt:
		op, a, b = "fclt", rv, lv
	case eGe:
		op, a, b = "fcle", rv, lv
	case eEq:
		op = "fceq"
	case eNe:
		op = "fceq"
		sense = !sense
	}
	g.emit("%s %s, %s", op, g.rn(a), g.rn(b))
	if sense {
		g.emit("bc1t %s", target)
	} else {
		g.emit("bc1f %s", target)
	}
	g.free(lv)
	g.free(rv)
	return nil
}

// Expression generation: returns a val holding the result. Callers free it.

func (g *gen) expr(e *expr) (val, error) {
	switch e.op {
	case eIntLit:
		v, err := g.allocInt(e.line)
		if err != nil {
			return val{}, err
		}
		g.emit("li %s, %d", g.rn(v), int32(e.ival))
		return v, nil
	case eFloatLit:
		v, err := g.allocFP(e.line)
		if err != nil {
			return val{}, err
		}
		g.emit("lfd %s, %s", g.rn(v), g.floatLabel(e.fval))
		return v, nil
	case eStrLit:
		v, err := g.allocInt(e.line)
		if err != nil {
			return val{}, err
		}
		g.emit("la %s, %s", g.rn(v), g.stringLabel(e.sval))
		return v, nil
	case eVar:
		return g.loadVar(e)
	case eAssign:
		return g.assign(e.lhs, e.rhs, e.line)
	case eCall:
		return g.call(e)
	case eCvt:
		return g.cvt(e)
	case eAdd, eSub:
		return g.addSub(e)
	case eMul, eDiv, eMod, eShl, eShr, eBitAnd, eBitOr, eBitXor:
		return g.binary(e)
	case eLt, eLe, eGt, eGe, eEq, eNe, eLAnd, eLOr, eNot:
		return g.boolValue(e)
	case eNeg:
		v, err := g.expr(e.lhs)
		if err != nil {
			return val{}, err
		}
		out, err := g.resultReg(v, e.line)
		if err != nil {
			return val{}, err
		}
		if v.fp {
			g.emit("fneg %s, %s", g.rn(out), g.rn(v))
		} else {
			g.emit("neg %s, %s", g.rn(out), g.rn(v))
		}
		return out, nil
	case eBitNot:
		v, err := g.expr(e.lhs)
		if err != nil {
			return val{}, err
		}
		out, err := g.resultReg(v, e.line)
		if err != nil {
			return val{}, err
		}
		g.emit("not %s, %s", g.rn(out), g.rn(v))
		return out, nil
	case eAddr:
		return g.addr(e.lhs)
	case eDeref, eIndex, eField:
		return g.loadLvalue(e)
	case eCond:
		return g.condValue(e)
	case ePostInc:
		return g.postIncDec(e, false)
	case ePostDec:
		return g.postIncDec(e, true)
	}
	return val{}, errf(e.line, "internal: unknown expression op %d", e.op)
}

// resultReg reuses v when it is a temporary of the right bank, otherwise
// allocates a fresh temp. The returned register replaces v (caller must not
// free v separately when it was a temp).
func (g *gen) resultReg(v val, line int) (val, error) {
	if v.isTemp() {
		return v, nil
	}
	if v.fp {
		return g.allocFP(line)
	}
	return g.allocInt(line)
}

// loadVar reads a variable into a register.
func (g *gen) loadVar(e *expr) (val, error) {
	sym := e.sym
	// Aggregates evaluate to their address.
	if !sym.ty.isScalar() {
		return g.addr(e)
	}
	if sym.reg >= 0 {
		if sym.isFPReg {
			return sfreg(sym.reg), nil
		}
		return sreg(sym.reg), nil
	}
	if sym.ty.kind == tyDouble {
		v, err := g.allocFP(e.line)
		if err != nil {
			return val{}, err
		}
		if sym.global {
			g.emit("lfd %s, %s", g.rn(v), sym.name)
		} else {
			g.emit("lfd %s, %d($sp)", g.rn(v), sym.frameOff)
		}
		return v, nil
	}
	v, err := g.allocInt(e.line)
	if err != nil {
		return val{}, err
	}
	op := "lw"
	if sym.ty.kind == tyChar {
		op = "lbu"
	}
	if sym.global {
		g.emit("%s %s, %s", op, g.rn(v), sym.name)
	} else {
		g.emit("%s %s, %d($sp)", op, g.rn(v), sym.frameOff)
	}
	return v, nil
}

// addr computes the address of an lvalue into an integer temp.
func (g *gen) addr(e *expr) (val, error) {
	switch e.op {
	case eVar:
		v, err := g.allocInt(e.line)
		if err != nil {
			return val{}, err
		}
		if e.sym.global {
			g.emit("la %s, %s", g.rn(v), e.sym.name)
		} else {
			g.emit("addi %s, $sp, %d", g.rn(v), e.sym.frameOff)
		}
		return v, nil
	case eDeref:
		return g.expr(e.lhs)
	case eField:
		base, err := g.addr(e.lhs)
		if err != nil {
			return val{}, err
		}
		out, err := g.resultReg(base, e.line)
		if err != nil {
			return val{}, err
		}
		g.emit("addi %s, %s, %d", g.rn(out), g.rn(base), e.field.off)
		return out, nil
	case eIndex:
		base, idxc, idxv, hasIdx, err := g.indexParts(e)
		if err != nil {
			return val{}, err
		}
		elem := e.ty
		out := base
		if hasIdx {
			out, err = g.resultReg(base, e.line)
			if err != nil {
				return val{}, err
			}
			g.emit("add %s, %s, %s", g.rn(out), g.rn(base), g.rn(idxv))
			g.free(idxv)
			if base != out {
				g.free(base)
			}
		}
		if idxc != 0 {
			out2, err := g.resultReg(out, e.line)
			if err != nil {
				return val{}, err
			}
			g.emit("addi %s, %s, %d", g.rn(out2), g.rn(out), idxc*int32(elem.size()))
			if out != out2 {
				g.free(out)
			}
			out = out2
		}
		return out, nil
	}
	return val{}, errf(e.line, "internal: addr of non-lvalue")
}

// indexParts evaluates the pieces of an eIndex: the base address register,
// a constant index part, and a scaled variable index register (hasScaled
// false if the index is entirely constant). The split produces the paper's
// "index constant" code shape for a[i+1].
func (g *gen) indexParts(e *expr) (base val, idxConst int32, scaled val, hasScaled bool, err error) {
	base, err = g.expr(e.lhs) // pointer or decayed array -> address
	if err != nil {
		return
	}
	elemSize := e.ty.size()

	idx := e.rhs
	// Split idx into (variable part + constant part).
	var varPart *expr
	switch {
	case idx.op == eIntLit:
		idxConst = int32(idx.ival)
	case idx.op == eAdd && idx.rhs.op == eIntLit:
		varPart, idxConst = idx.lhs, int32(idx.rhs.ival)
	case idx.op == eAdd && idx.lhs.op == eIntLit:
		varPart, idxConst = idx.rhs, int32(idx.lhs.ival)
	case idx.op == eSub && idx.rhs.op == eIntLit:
		varPart, idxConst = idx.lhs, -int32(idx.rhs.ival)
	default:
		varPart = idx
	}
	if varPart == nil {
		return base, idxConst, val{}, false, nil
	}
	iv, err2 := g.expr(varPart)
	if err2 != nil {
		err = err2
		return
	}
	scaled, err = g.scaleIndex(iv, elemSize, e.line)
	hasScaled = err == nil
	return
}

// scaleIndex multiplies an index register by the element size.
func (g *gen) scaleIndex(iv val, elemSize, line int) (val, error) {
	if elemSize == 1 {
		return iv, nil
	}
	out, err := g.resultReg(iv, line)
	if err != nil {
		return val{}, err
	}
	if elemSize&(elemSize-1) == 0 {
		g.emit("sll %s, %s, %d", g.rn(out), g.rn(iv), log2i(elemSize))
	} else {
		g.emit("li $t8, %d", elemSize)
		g.emit("mul %s, %s, $t8", g.rn(out), g.rn(iv))
	}
	if out != iv {
		g.free(iv)
	}
	return out, nil
}

func log2i(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	return n
}
