package fleet_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/pipeline"
	"repro/internal/simsvc"
)

// e2eMaxInsts keeps end-to-end simulations fast (shared convention with
// the simsvc e2e tests).
const e2eMaxInsts = 5_000_000

func resolveMachine(m string) (pipeline.Config, error) {
	return experiments.MachineConfig(experiments.Machine(m))
}

// newWorkerDaemon starts one real worker facd: a full simsvc server over
// a simulating runner with its own persistent cache.
func newWorkerDaemon(t *testing.T) *httptest.Server {
	t.Helper()
	cache, err := simsvc.OpenDiskCache(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	runner := &simsvc.Runner{Resolve: resolveMachine, MaxInsts: e2eMaxInsts, Cache: cache}
	s, err := simsvc.NewServer(simsvc.ServerConfig{Workers: 2, QueueDepth: 64}, runner)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return hs
}

// newCoordinator starts a coordinator facd whose JobRunner is a fleet
// dispatcher over the given workers — the same server surface as a
// single daemon, with execution sharded across the fleet.
func newCoordinator(t *testing.T, workers []string, hedge, coolOff time.Duration) (string, *fleet.Dispatcher) {
	t.Helper()
	local := &simsvc.Runner{Resolve: resolveMachine, MaxInsts: e2eMaxInsts}
	d, err := fleet.New(fleet.Config{
		Workers:    workers,
		Local:      local,
		HedgeAfter: hedge,
		CoolOff:    coolOff,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := simsvc.NewServer(simsvc.ServerConfig{Workers: 4, QueueDepth: 64}, d)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return hs.URL, d
}

// newSingleDaemon is the fleet's reference: one daemon simulating
// locally, no dispatcher in the path.
func newSingleDaemon(t *testing.T) string {
	t.Helper()
	runner := &simsvc.Runner{Resolve: resolveMachine, MaxInsts: e2eMaxInsts}
	s, err := simsvc.NewServer(simsvc.ServerConfig{Workers: 2, QueueDepth: 64}, runner)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Drain(ctx)
	})
	return hs.URL
}

// e2eJobs builds a job set whose shard keys cover every worker on the
// ring, extending a base grid with MaxInsts-perturbed runs until each
// worker owns at least one job (the perturbed bound exceeds the
// programs' natural instruction counts, so timing is unaffected).
func e2eJobs(t *testing.T, workers []string) []simsvc.JobSpec {
	t.Helper()
	jobs := []simsvc.JobSpec{
		{Workload: "queens", Toolchain: "base", Machine: "base32"},
		{Workload: "queens", Toolchain: "base", Machine: "base16"},
		{Workload: "queens", Toolchain: "fac", Machine: "fac16"},
		{Workload: "queens", Toolchain: "fac", Machine: "fac32"},
		{Workload: "queens", Toolchain: "fac", Machine: "fac32+rr"},
	}
	local := &simsvc.Runner{Resolve: resolveMachine, MaxInsts: e2eMaxInsts}
	ring, err := fleet.NewRing(workers)
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[string]bool)
	for _, j := range jobs {
		key, err := local.Key(j)
		if err != nil {
			t.Fatal(err)
		}
		covered[ring.Owner(key)] = true
	}
	for i := uint64(1); len(covered) < len(workers); i++ {
		if i > 10_000 {
			t.Fatal("could not cover every worker's shard")
		}
		j := simsvc.JobSpec{Workload: "queens", Toolchain: "base", Machine: "base32", MaxInsts: e2eMaxInsts + i}
		key, err := local.Key(j)
		if err != nil {
			t.Fatal(err)
		}
		if !covered[ring.Owner(key)] {
			covered[ring.Owner(key)] = true
			jobs = append(jobs, j)
		}
	}
	return jobs
}

func submitBatch(t *testing.T, base string, jobs []simsvc.JobSpec) (batch string, jobIDs []string) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"jobs": jobs})
	resp, err := http.Post(base+"/v1/batches", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Batch string   `json:"batch"`
		Jobs  []string `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	return sub.Batch, sub.Jobs
}

// waitBatchDone polls to terminal and fails the test if any job failed
// or was lost.
func waitBatchDone(t *testing.T, base, batch string, total int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("batch never finished")
		}
		resp, err := http.Get(base + "/v1/batches/" + batch)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Terminal  bool `json:"terminal"`
			Done      int  `json:"done"`
			Failed    int  `json:"failed"`
			Cancelled int  `json:"cancelled"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Terminal {
			if st.Done != total || st.Failed != 0 || st.Cancelled != 0 {
				t.Fatalf("batch finished done=%d failed=%d cancelled=%d, want %d done",
					st.Done, st.Failed, st.Cancelled, total)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fetchReport(t *testing.T, base, batch string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/batches/" + batch + "/report")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d: %s", resp.StatusCode, data)
	}
	return data
}

// TestE2EFleetMatchesSingleDaemon: a batch run through a coordinator and
// two sharded workers produces report bytes identical to the same batch
// on a single stand-alone daemon — the determinism contract survives
// distribution. Every worker serves part of the batch, and job views
// attribute each run to the worker that executed it.
func TestE2EFleetMatchesSingleDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation in -short mode")
	}
	w0, w1 := newWorkerDaemon(t), newWorkerDaemon(t)
	workers := []string{w0.URL, w1.URL}
	coord, disp := newCoordinator(t, workers, -1, 0)
	jobs := e2eJobs(t, workers)

	batch, jobIDs := submitBatch(t, coord, jobs)
	waitBatchDone(t, coord, batch, len(jobs))
	fleetReport := fetchReport(t, coord, batch)

	single := newSingleDaemon(t)
	refBatch, _ := submitBatch(t, single, jobs)
	waitBatchDone(t, single, refBatch, len(jobs))
	refReport := fetchReport(t, single, refBatch)

	if !bytes.Equal(fleetReport, refReport) {
		t.Fatalf("fleet report differs from single daemon:\n--- fleet ---\n%s\n--- single ---\n%s",
			fleetReport, refReport)
	}

	// Every worker served at least one job, and together they served all.
	var total uint64
	for _, st := range disp.FleetStats() {
		if st.Completed == 0 {
			t.Fatalf("worker %s completed nothing: %+v", st.URL, disp.FleetStats())
		}
		total += st.Completed
	}
	if total != uint64(len(jobs)) {
		t.Fatalf("fleet completed %d jobs, want %d", total, len(jobs))
	}

	// Job views attribute the serving worker.
	for _, id := range jobIDs {
		resp, err := http.Get(coord + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var jv struct {
			Worker string `json:"worker"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&jv); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if jv.Worker != w0.URL && jv.Worker != w1.URL {
			t.Fatalf("job %s attributed to %q, want one of the workers", id, jv.Worker)
		}
	}
}

// TestE2EFleetSurvivesWorkerKill: killing a worker mid-batch loses no
// jobs — its shard fails over to the survivor — and the drained batch's
// report is still byte-identical to a single daemon's.
func TestE2EFleetSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end simulation in -short mode")
	}
	victim, survivor := newWorkerDaemon(t), newWorkerDaemon(t)
	workers := []string{victim.URL, survivor.URL}
	// Tight hedge/cool-off so the kill is absorbed quickly: in-flight
	// requests die with the connection and fail over; stragglers hedge.
	coord, disp := newCoordinator(t, workers, 300*time.Millisecond, 100*time.Millisecond)
	jobs := e2eJobs(t, workers)

	batch, _ := submitBatch(t, coord, jobs)
	// SIGKILL equivalent for an httptest worker: sever live connections
	// (aborting its in-flight simulations) and stop accepting new ones,
	// while the batch is still in flight.
	victim.CloseClientConnections()
	victim.Close()

	waitBatchDone(t, coord, batch, len(jobs))
	fleetReport := fetchReport(t, coord, batch)

	single := newSingleDaemon(t)
	refBatch, _ := submitBatch(t, single, jobs)
	waitBatchDone(t, single, refBatch, len(jobs))
	refReport := fetchReport(t, single, refBatch)

	if !bytes.Equal(fleetReport, refReport) {
		t.Fatalf("post-kill fleet report differs from single daemon:\n--- fleet ---\n%s\n--- single ---\n%s",
			fleetReport, refReport)
	}
	// The survivor picked up the dead worker's shard.
	for _, st := range disp.FleetStats() {
		if st.URL == survivor.URL && st.Completed < uint64(len(jobs)) {
			// Some jobs may have completed on the victim before the kill;
			// the survivor must have served everything that remained.
			if st.Completed == 0 {
				t.Fatalf("survivor served nothing: %+v", disp.FleetStats())
			}
		}
	}
}
