package fleet

import (
	"fmt"
	"testing"
)

// TestRingDeterminism: ownership is a pure function of (membership, key) —
// independent of construction order and identical across ring instances,
// because coordinator restarts must re-derive the same shard map.
func TestRingDeterminism(t *testing.T) {
	workers := []string{"http://w0", "http://w1", "http://w2"}
	a, err := NewRing(workers)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"http://w2", "http://w0", "http://w1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("owner of %q depends on construction order: %q vs %q",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingSpread: with 64 virtual nodes per worker, no worker ends up
// owning nothing (or everything) over a modest key population.
func TestRingSpread(t *testing.T) {
	workers := []string{"http://w0", "http://w1", "http://w2"}
	r, err := NewRing(workers)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 300
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, w := range workers {
		if counts[w] == 0 {
			t.Fatalf("worker %s owns no keys: %v", w, counts)
		}
		if counts[w] == n {
			t.Fatalf("worker %s owns every key: %v", w, counts)
		}
	}
}

// TestRingOwners: the preference list starts with the primary, contains
// every worker exactly once, and is stable call to call.
func TestRingOwners(t *testing.T) {
	workers := []string{"http://w0", "http://w1", "http://w2", "http://w3"}
	r, err := NewRing(workers)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		owners := r.Owners(key)
		if len(owners) != len(workers) {
			t.Fatalf("Owners(%q) = %v, want all %d workers", key, owners, len(workers))
		}
		if owners[0] != r.Owner(key) {
			t.Fatalf("Owners(%q)[0] = %q, Owner = %q", key, owners[0], r.Owner(key))
		}
		seen := make(map[string]bool)
		for _, w := range owners {
			if seen[w] {
				t.Fatalf("Owners(%q) repeats %q: %v", key, w, owners)
			}
			seen[w] = true
		}
		again := r.Owners(key)
		for j := range owners {
			if owners[j] != again[j] {
				t.Fatalf("Owners(%q) unstable: %v then %v", key, owners, again)
			}
		}
	}
}

// TestNewRingRejects: invalid membership fails construction rather than
// mis-sharding later.
func TestNewRingRejects(t *testing.T) {
	for _, workers := range [][]string{
		nil,
		{},
		{"http://w0", "http://w0"},
		{"http://w0", ""},
	} {
		if _, err := NewRing(workers); err == nil {
			t.Fatalf("NewRing(%v) accepted invalid membership", workers)
		}
	}
}
