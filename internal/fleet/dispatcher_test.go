package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/simsvc"
	"repro/internal/workload"
)

// testLocal is a resolver-only runner: the dispatcher uses it for spec
// validation and shard-key derivation, never to simulate.
func testLocal() *simsvc.Runner {
	return &simsvc.Runner{
		Resolve: func(machine string) (pipeline.Config, error) { return pipeline.Config{}, nil },
	}
}

func testSpec(maxInsts uint64) simsvc.JobSpec {
	return simsvc.JobSpec{
		Workload:  workload.All()[0].Name,
		Toolchain: "base",
		Machine:   "base32",
		MaxInsts:  maxInsts,
	}
}

// serveRecord writes a well-formed synchronous-run response.
func serveRecord(w http.ResponseWriter, cycles uint64) {
	rec := obs.RunRecord{
		Schema:    obs.RunRecordSchema,
		Benchmark: "stub",
		Toolchain: "base",
		Machine:   "base32",
		Cycles:    cycles,
	}
	json.NewEncoder(w).Encode(map[string]any{"cache_hit": false, "record": rec})
}

// specOwnedBy searches MaxInsts values until the spec's shard key lands
// on the wanted worker, so tests can steer jobs at a particular primary.
func specOwnedBy(t *testing.T, d *Dispatcher, worker string) simsvc.JobSpec {
	t.Helper()
	for i := uint64(1); i < 10_000; i++ {
		spec := testSpec(i)
		key, err := d.cfg.Local.Key(spec)
		if err != nil {
			t.Fatal(err)
		}
		if d.ring.Owner(key) == worker {
			return spec
		}
	}
	t.Fatalf("no spec found with primary %s", worker)
	return simsvc.JobSpec{}
}

// TestDispatcherShardAffinity: the same spec always lands on the same
// worker (its cache stays warm), and distinct specs spread across the
// fleet.
func TestDispatcherShardAffinity(t *testing.T) {
	var counts [3]atomic.Int64
	var urls []string
	for i := 0; i < 3; i++ {
		i := i
		s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			counts[i].Add(1)
			serveRecord(w, 1)
		}))
		defer s.Close()
		urls = append(urls, s.URL)
	}
	d, err := New(Config{Workers: urls, Local: testLocal(), HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	spec := testSpec(7)
	for i := 0; i < 5; i++ {
		if _, _, err := d.Run(ctx, spec); err != nil {
			t.Fatal(err)
		}
	}
	hot := 0
	for i := range counts {
		if n := counts[i].Load(); n > 0 {
			hot++
			if n != 5 {
				t.Fatalf("worker %d served %d of 5 identical runs", i, n)
			}
		}
	}
	if hot != 1 {
		t.Fatalf("identical runs spread over %d workers, want 1", hot)
	}

	for i := uint64(1); i <= 30; i++ {
		if _, _, err := d.Run(ctx, testSpec(i)); err != nil {
			t.Fatal(err)
		}
	}
	spread := 0
	for i := range counts {
		if counts[i].Load() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Fatalf("30 distinct specs all landed on one worker")
	}
}

// TestDispatcherFailover: a worker failing at the transport/5xx level is
// routed around — the next ring owner serves the job, the failure is
// counted, and the steal is attributed to the dead primary.
func TestDispatcherFailover(t *testing.T) {
	var badCalls, goodCalls atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badCalls.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		goodCalls.Add(1)
		serveRecord(w, 42)
	}))
	defer good.Close()

	d, err := New(Config{Workers: []string{bad.URL, good.URL}, Local: testLocal(), HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	spec := specOwnedBy(t, d, bad.URL)

	ctx, note := simsvc.WithWorkerNote(context.Background())
	rec, _, err := d.Run(ctx, spec)
	if err != nil {
		t.Fatalf("failover run failed: %v", err)
	}
	if rec.Cycles != 42 {
		t.Fatalf("record came from the wrong worker: %+v", rec)
	}
	if note.Get() != good.URL {
		t.Fatalf("worker attribution = %q, want %q", note.Get(), good.URL)
	}
	if badCalls.Load() != 1 || goodCalls.Load() != 1 {
		t.Fatalf("calls = bad:%d good:%d, want 1:1", badCalls.Load(), goodCalls.Load())
	}
	var badSt, goodSt simsvc.WorkerStatus
	for _, st := range d.FleetStats() {
		switch st.URL {
		case bad.URL:
			badSt = st
		case good.URL:
			goodSt = st
		}
	}
	if badSt.Failed != 1 || badSt.Stolen != 1 || badSt.Healthy {
		t.Fatalf("dead primary stats = %+v", badSt)
	}
	if goodSt.Completed != 1 {
		t.Fatalf("serving worker stats = %+v", goodSt)
	}

	// The dead worker is now in cool-off: a second run of the same spec
	// must go straight to the healthy worker without retrying it.
	if _, _, err := d.Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if badCalls.Load() != 1 {
		t.Fatalf("cool-off ignored: dead worker called %d times", badCalls.Load())
	}
}

// TestDispatcherSemanticErrorNoFailover: a deterministic 4xx refusal
// returns immediately — every worker would reject the same way, so
// re-dispatching would only duplicate the failure.
func TestDispatcherSemanticErrorNoFailover(t *testing.T) {
	var calls [2]atomic.Int64
	var urls []string
	for i := 0; i < 2; i++ {
		i := i
		s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls[i].Add(1)
			http.Error(w, `{"error":"no such machine"}`, http.StatusBadRequest)
		}))
		defer s.Close()
		urls = append(urls, s.URL)
	}
	d, err := New(Config{Workers: urls, Local: testLocal(), HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = d.Run(context.Background(), testSpec(3))
	if err == nil || !strings.Contains(err.Error(), "no such machine") {
		t.Fatalf("err = %v, want the worker's 400", err)
	}
	if total := calls[0].Load() + calls[1].Load(); total != 1 {
		t.Fatalf("semantic failure dispatched %d times, want 1", total)
	}
}

// TestDispatcherHedging: when the primary straggles past HedgeAfter, a
// backup dispatch on the next owner wins; the straggler's attempt is
// cancelled and the steal is recorded.
func TestDispatcherHedging(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			return
		case <-time.After(5 * time.Second):
			serveRecord(w, 1)
		}
	}))
	defer slow.Close()
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveRecord(w, 2)
	}))
	defer fast.Close()

	d, err := New(Config{
		Workers:    []string{slow.URL, fast.URL},
		Local:      testLocal(),
		HedgeAfter: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := specOwnedBy(t, d, slow.URL)

	start := time.Now()
	ctx, note := simsvc.WithWorkerNote(context.Background())
	rec, _, err := d.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cycles != 2 || note.Get() != fast.URL {
		t.Fatalf("hedge did not win: cycles=%d worker=%q", rec.Cycles, note.Get())
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("run waited for the straggler")
	}
	var fastSt, slowSt simsvc.WorkerStatus
	for _, st := range d.FleetStats() {
		switch st.URL {
		case fast.URL:
			fastSt = st
		case slow.URL:
			slowSt = st
		}
	}
	if fastSt.Hedges != 1 || fastSt.Completed != 1 {
		t.Fatalf("hedged worker stats = %+v", fastSt)
	}
	if slowSt.Stolen != 1 {
		t.Fatalf("straggler stats = %+v", slowSt)
	}
}

// TestDispatcherAbsorbsBackpressure: a 429 with Retry-After is not a
// failure — the dispatch waits and retries the same worker, preserving
// shard affinity under quota pressure.
func TestDispatcherAbsorbsBackpressure(t *testing.T) {
	var calls atomic.Int64
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"over quota"}`, http.StatusTooManyRequests)
			return
		}
		serveRecord(w, 9)
	}))
	defer s.Close()
	d, err := New(Config{Workers: []string{s.URL}, Local: testLocal(), HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := d.Run(context.Background(), testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Cycles != 9 || calls.Load() != 2 {
		t.Fatalf("cycles=%d calls=%d, want 9 after 2 calls", rec.Cycles, calls.Load())
	}
}

// TestDispatcherAllWorkersFailed: when every owner fails at the
// transport level the error says so and wraps the last cause.
func TestDispatcherAllWorkersFailed(t *testing.T) {
	s := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"disk on fire"}`, http.StatusServiceUnavailable)
	}))
	defer s.Close()
	d, err := New(Config{Workers: []string{s.URL}, Local: testLocal(), HedgeAfter: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = d.Run(context.Background(), testSpec(1))
	if err == nil || !strings.Contains(err.Error(), "all 1 workers failed") {
		t.Fatalf("err = %v, want all-workers-failed", err)
	}
	if !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("err = %v, want the underlying cause preserved", err)
	}
}
