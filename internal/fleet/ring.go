// Package fleet scales the simulation service from one daemon to a
// sharded fleet: a coordinator facd accepts the same API as a worker
// facd but executes nothing locally — its JobRunner dispatches each job
// to the worker that owns the job's content-addressed cache key on a
// consistent-hash ring, with failover and hedged re-dispatch when a
// worker dies or straggles.
//
// Sharding by cache key (not by workload name or round-robin) is the
// point: the key already captures every input that can change a result,
// so the same run always lands on the same worker and that worker's
// persistent DiskCache stays warm for it. Because results are
// deterministic and content-addressed, re-dispatching a job to a second
// worker is always safe — both compute (or fetch) the identical record,
// so at-most-once *completion* holds even when execution is
// at-least-once.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// defaultReplicas is the virtual-node count per worker. 64 keeps the
// per-worker load spread within a few percent for small fleets while
// the ring stays tiny (N×64 points).
const defaultReplicas = 64

// Ring is a consistent-hash ring over worker names. It is immutable
// after construction: membership changes (a worker marked down) are
// handled by walking successors at lookup time, not by rebuilding, so
// shard ownership is stable across transient failures and caches stay
// warm when the worker comes back.
type Ring struct {
	points  []ringPoint // sorted by hash
	workers []string
}

type ringPoint struct {
	hash   uint64
	worker string
}

// NewRing builds a ring with the default virtual-node count.
func NewRing(workers []string) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("fleet: ring needs at least one worker")
	}
	seen := make(map[string]bool, len(workers))
	r := &Ring{workers: append([]string(nil), workers...)}
	for _, w := range workers {
		if w == "" {
			return nil, fmt.Errorf("fleet: empty worker name")
		}
		if seen[w] {
			return nil, fmt.Errorf("fleet: duplicate worker %q", w)
		}
		seen[w] = true
		for i := 0; i < defaultReplicas; i++ {
			r.points = append(r.points, ringPoint{
				hash:   ringHash(w + "#" + strconv.Itoa(i)),
				worker: w,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by name so ownership is
		// deterministic across processes.
		return r.points[i].worker < r.points[j].worker
	})
	return r, nil
}

// Workers returns the ring membership in construction order.
func (r *Ring) Workers() []string { return append([]string(nil), r.workers...) }

// ringHash maps a string to a ring position. sha256 (not a fast
// non-crypto hash) so the placement is stable across Go versions and
// architectures — ownership must agree between coordinator restarts.
func ringHash(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// Owners returns the key's preference order: the owner first, then each
// distinct successor around the ring. A dispatcher tries them in order,
// so failover and hedging fall out of the same list that defines
// primary ownership.
func (r *Ring) Owners(key string) []string {
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.workers))
	seen := make(map[string]bool, len(r.workers))
	for n := 0; n < len(r.points) && len(out) < len(r.workers); n++ {
		p := r.points[(i+n)%len(r.points)]
		if !seen[p.worker] {
			seen[p.worker] = true
			out = append(out, p.worker)
		}
	}
	return out
}

// Owner returns the key's primary owner.
func (r *Ring) Owner(key string) string { return r.Owners(key)[0] }
