package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/simsvc"
)

// Config wires a Dispatcher.
type Config struct {
	// Workers are the worker daemons' base URLs (ring membership).
	Workers []string
	// Token is the bearer token the coordinator presents to workers.
	Token string
	// Local resolves and validates specs and derives shard keys. Its
	// Resolve table and MaxInsts default must match the workers' so the
	// coordinator's keys equal the keys the workers cache under; it never
	// simulates.
	Local *simsvc.Runner
	// HedgeAfter is how long the primary attempt may run before a backup
	// dispatch is launched on the next ring owner (work-stealing for
	// stragglers). 0 = 30s; negative disables hedging.
	HedgeAfter time.Duration
	// CoolOff is how long a worker that failed a dispatch at the
	// transport level is deprioritised before being tried first again
	// (0 = 5s).
	CoolOff time.Duration
	// HTTPClient overrides the transport to workers (nil = default).
	HTTPClient *http.Client
}

// Dispatcher is the coordinator's JobRunner: Run ships the job to the
// worker owning its cache key, failing over (and hedging) around the
// ring instead of executing locally. Plugging it into simsvc.Server
// gives the coordinator the whole single-daemon surface — auth, quotas,
// fair scheduling, batches, progress streams — for free; only execution
// is remote.
type Dispatcher struct {
	cfg     Config
	ring    *Ring
	clients map[string]*simsvc.Client

	mu    sync.Mutex
	state map[string]*workerState
}

type workerState struct {
	downUntil  time.Time
	dispatched uint64
	completed  uint64
	failed     uint64
	stolen     uint64
	hedges     uint64
}

// New builds a dispatcher over the configured workers.
func New(cfg Config) (*Dispatcher, error) {
	if cfg.Local == nil {
		return nil, errors.New("fleet: config needs a local resolver runner")
	}
	ring, err := NewRing(cfg.Workers)
	if err != nil {
		return nil, err
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 30 * time.Second
	}
	if cfg.CoolOff <= 0 {
		cfg.CoolOff = 5 * time.Second
	}
	d := &Dispatcher{
		cfg:     cfg,
		ring:    ring,
		clients: make(map[string]*simsvc.Client, len(cfg.Workers)),
		state:   make(map[string]*workerState, len(cfg.Workers)),
	}
	for _, w := range cfg.Workers {
		d.clients[w] = &simsvc.Client{Base: w, Token: cfg.Token, HTTPClient: cfg.HTTPClient}
		d.state[w] = &workerState{}
	}
	return d, nil
}

// Ping probes every worker's health endpoint, failing on the first
// unreachable one; the coordinator calls it at startup to fail fast on
// a misconfigured fleet.
func (d *Dispatcher) Ping(ctx context.Context) error {
	for _, w := range d.ring.Workers() {
		if err := d.clients[w].Healthz(ctx); err != nil {
			return fmt.Errorf("fleet: worker %s: %w", w, err)
		}
	}
	return nil
}

// Validate delegates to the local resolver; a spec that validates here
// validates on every worker because all share the workload table and
// machine configurations.
func (d *Dispatcher) Validate(spec simsvc.JobSpec) error {
	return d.cfg.Local.Validate(spec)
}

// FleetStats snapshots per-worker dispatch accounting for /metrics.
func (d *Dispatcher) FleetStats() []simsvc.WorkerStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	out := make([]simsvc.WorkerStatus, 0, len(d.clients))
	for _, w := range d.ring.Workers() {
		st := d.state[w]
		out = append(out, simsvc.WorkerStatus{
			URL:        w,
			Healthy:    !now.Before(st.downUntil),
			Dispatched: st.dispatched,
			Completed:  st.completed,
			Failed:     st.failed,
			Stolen:     st.stolen,
			Hedges:     st.hedges,
		})
	}
	return out
}

// orderOwners moves workers inside their cool-off window to the back of
// the preference list, preserving ring order within each group.
func (d *Dispatcher) orderOwners(owners []string) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	up := make([]string, 0, len(owners))
	var down []string
	for _, w := range owners {
		if now.Before(d.state[w].downUntil) {
			down = append(down, w)
		} else {
			up = append(up, w)
		}
	}
	return append(up, down...)
}

func (d *Dispatcher) note(worker string, f func(*workerState)) {
	d.mu.Lock()
	f(d.state[worker])
	d.mu.Unlock()
}

// transient reports whether a dispatch error indicates the worker (or
// the path to it) is unhealthy — worth failing over — rather than a
// deterministic property of the job, which every worker would reproduce.
func transient(err error) bool {
	var se *simsvc.StatusError
	if errors.As(err, &se) {
		return se.Status >= 500
	}
	var re *simsvc.RetryError
	if errors.As(err, &re) {
		return true // saturated, not broken; another owner may have room
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true // transport-level failure (refused, reset, EOF, ...)
}

// runOn executes the spec synchronously on one worker, absorbing 429
// backpressure by honoring Retry-After until ctx expires.
func (d *Dispatcher) runOn(ctx context.Context, worker string, spec simsvc.JobSpec) (obs.RunRecord, bool, error) {
	c := d.clients[worker]
	for {
		rec, hit, err := c.RunSync(ctx, spec)
		var re *simsvc.RetryError
		if errors.As(err, &re) {
			select {
			case <-ctx.Done():
				return obs.RunRecord{}, false, ctx.Err()
			case <-time.After(re.After):
				continue
			}
		}
		return rec, hit, err
	}
}

// attempt is one in-flight dispatch's outcome.
type attempt struct {
	worker string
	rec    obs.RunRecord
	hit    bool
	err    error
}

// Run dispatches one job. The job's cache key picks its owner on the
// ring; the attempt fails over to the next distinct owner on transport
// errors (the failed worker enters a cool-off), and a hedged backup
// dispatch is launched when the leader straggles past HedgeAfter. The
// first successful attempt wins and cancels the rest — safe because
// every worker computes the identical content-addressed record, so
// completion is at-most-once even when execution is not. Deterministic
// (semantic) failures return immediately without failover: every worker
// would fail the same way.
func (d *Dispatcher) Run(ctx context.Context, spec simsvc.JobSpec) (obs.RunRecord, bool, error) {
	key, err := d.cfg.Local.Key(spec)
	if err != nil {
		return obs.RunRecord{}, false, err
	}
	owners := d.orderOwners(d.ring.Owners(key))
	primary := owners[0]

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel() // reap losing attempts once a winner returns

	resc := make(chan attempt, len(owners))
	inFlight := 0
	next := 0
	launch := func(hedge bool) {
		w := owners[next]
		next++
		inFlight++
		d.note(w, func(st *workerState) {
			st.dispatched++
			if hedge {
				st.hedges++
			}
		})
		go func() {
			rec, hit, err := d.runOn(runCtx, w, spec)
			resc <- attempt{worker: w, rec: rec, hit: hit, err: err}
		}()
	}
	launch(false)

	var hedgeC <-chan time.Time
	if d.cfg.HedgeAfter > 0 {
		t := time.NewTicker(d.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}

	var lastErr error
	for {
		select {
		case <-ctx.Done():
			return obs.RunRecord{}, false, ctx.Err()
		case <-hedgeC:
			if next < len(owners) {
				launch(true)
			}
		case a := <-resc:
			inFlight--
			if a.err == nil {
				simsvc.NoteWorker(ctx, a.worker)
				d.note(a.worker, func(st *workerState) { st.completed++ })
				if a.worker != primary {
					d.note(primary, func(st *workerState) { st.stolen++ })
				}
				return a.rec, a.hit, nil
			}
			if ctx.Err() != nil {
				return obs.RunRecord{}, false, ctx.Err()
			}
			if !transient(a.err) {
				d.note(a.worker, func(st *workerState) { st.failed++ })
				return obs.RunRecord{}, false, a.err
			}
			lastErr = a.err
			d.note(a.worker, func(st *workerState) {
				st.failed++
				st.downUntil = time.Now().Add(d.cfg.CoolOff)
			})
			if next < len(owners) {
				launch(false)
			} else if inFlight == 0 {
				return obs.RunRecord{}, false, fmt.Errorf("fleet: all %d workers failed for %s: %w",
					len(owners), spec, lastErr)
			}
		}
	}
}
