package asm

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/isa"
)

// TestDisassemblyReassembles: every instruction the disassembler prints is
// accepted by the assembler and reassembles to the identical instruction —
// the two tools agree on the surface syntax.
func TestDisassemblyReassembles(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	reg := func() isa.Reg { return isa.Reg(r.Intn(32)) }
	imm16 := func() int32 { return int32(int16(r.Uint32())) }

	// Build a pool of random instructions covering every non-control,
	// non-pseudo shape (branches/jumps print raw displacements/targets,
	// which reassemble through the numeric path).
	var insts []isa.Inst
	for i := 0; i < 3000; i++ {
		switch r.Intn(12) {
		case 0:
			ops := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.AND, isa.OR,
				isa.XOR, isa.NOR, isa.SLT, isa.SLTU, isa.SLLV, isa.SRLV, isa.SRAV,
				isa.REM, isa.REMU, isa.DIVU}
			insts = append(insts, isa.Inst{Op: ops[r.Intn(len(ops))], Rd: reg(), Rs: reg(), Rt: reg()})
		case 1:
			ops := []isa.Op{isa.ADDI, isa.SLTI, isa.SLTIU}
			insts = append(insts, isa.Inst{Op: ops[r.Intn(len(ops))], Rd: reg(), Rs: reg(), Imm: imm16()})
		case 2:
			ops := []isa.Op{isa.ANDI, isa.ORI, isa.XORI}
			insts = append(insts, isa.Inst{Op: ops[r.Intn(len(ops))], Rd: reg(), Rs: reg(), Imm: int32(r.Intn(1 << 16))})
		case 3:
			ops := []isa.Op{isa.SLL, isa.SRL, isa.SRA}
			insts = append(insts, isa.Inst{Op: ops[r.Intn(len(ops))], Rd: reg(), Rs: reg(), Imm: int32(r.Intn(32))})
		case 4:
			insts = append(insts, isa.Inst{Op: isa.LUI, Rd: reg(), Imm: int32(r.Intn(1 << 16))})
		case 5:
			ops := []isa.Op{isa.LB, isa.LBU, isa.LH, isa.LHU, isa.LW}
			insts = append(insts, isa.Inst{Op: ops[r.Intn(len(ops))], Rd: reg(), Rs: reg(), Imm: imm16()})
		case 6:
			ops := []isa.Op{isa.SB, isa.SH, isa.SW}
			insts = append(insts, isa.Inst{Op: ops[r.Intn(len(ops))], Rt: reg(), Rs: reg(), Imm: imm16()})
		case 7:
			ops := []isa.Op{isa.LBX, isa.LBUX, isa.LHX, isa.LHUX, isa.LWX, isa.SBX, isa.SHX, isa.SWX}
			insts = append(insts, isa.Inst{Op: ops[r.Intn(len(ops))], Rd: reg(), Rs: reg(), Rt: reg()})
		case 8:
			insts = append(insts,
				isa.Inst{Op: isa.LWPI, Rd: reg(), Rs: reg(), Imm: imm16()},
				isa.Inst{Op: isa.SWPI, Rt: reg(), Rs: reg(), Imm: imm16()})
		case 9:
			insts = append(insts,
				isa.Inst{Op: isa.LFD, Rd: reg(), Rs: reg(), Imm: imm16()},
				isa.Inst{Op: isa.SFD, Rt: reg(), Rs: reg(), Imm: imm16()},
				isa.Inst{Op: isa.LFDX, Rd: reg(), Rs: reg(), Rt: reg()},
				isa.Inst{Op: isa.SFDX, Rd: reg(), Rs: reg(), Rt: reg()})
		case 10:
			ops := []isa.Op{isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV}
			insts = append(insts, isa.Inst{Op: ops[r.Intn(len(ops))], Rd: reg(), Rs: reg(), Rt: reg()})
			insts = append(insts, isa.Inst{Op: isa.FMOV, Rd: reg(), Rs: reg()})
			insts = append(insts, isa.Inst{Op: isa.FCLT, Rs: reg(), Rt: reg()})
		case 11:
			insts = append(insts,
				isa.Inst{Op: isa.MTC1, Rd: reg(), Rs: reg()},
				isa.Inst{Op: isa.MFC1, Rd: reg(), Rs: reg()},
				isa.Inst{Op: isa.CVTDW, Rd: reg(), Rs: reg()},
				isa.Inst{Op: isa.SYSCALL},
				isa.Inst{Op: isa.JR, Rs: reg()},
				isa.Inst{Op: isa.JALR, Rd: reg(), Rs: reg()})
		}
	}

	var src strings.Builder
	src.WriteString("main:\n")
	for _, in := range insts {
		fmt.Fprintf(&src, "\t%s\n", in.String())
	}
	o, err := Assemble(src.String())
	if err != nil {
		t.Fatalf("reassembly failed: %v", err)
	}
	if len(o.Text) != len(insts) {
		t.Fatalf("reassembled %d instructions, want %d", len(o.Text), len(insts))
	}
	for i := range insts {
		if o.Text[i] != insts[i] {
			t.Fatalf("instruction %d: %v reassembled as %v (%+v vs %+v)",
				i, insts[i], o.Text[i], insts[i], o.Text[i])
		}
	}
}

// TestBranchAndJumpDisassemblyReassembles covers the control-transfer
// shapes, whose operands print as raw numbers.
func TestBranchAndJumpDisassemblyReassembles(t *testing.T) {
	insts := []isa.Inst{
		{Op: isa.BEQ, Rs: isa.T0, Rt: isa.T1, Imm: -8},
		{Op: isa.BNE, Rs: isa.T2, Rt: isa.Zero, Imm: 16},
		{Op: isa.BLEZ, Rs: isa.T0, Imm: 4},
		{Op: isa.BGTZ, Rs: isa.T0, Imm: -4},
		{Op: isa.BLTZ, Rs: isa.T0, Imm: 8},
		{Op: isa.BGEZ, Rs: isa.T0, Imm: 12},
		{Op: isa.BC1T, Imm: 8},
		{Op: isa.BC1F, Imm: -12},
		{Op: isa.J, Imm: 0x400000},
		{Op: isa.JAL, Imm: 0x400010},
	}
	var src strings.Builder
	src.WriteString("main:\n")
	for _, in := range insts {
		fmt.Fprintf(&src, "\t%s\n", in.String())
	}
	o, err := Assemble(src.String())
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, src.String())
	}
	for i := range insts {
		if o.Text[i] != insts[i] {
			t.Errorf("instruction %d: %v reassembled as %+v", i, insts[i], o.Text[i])
		}
	}
}
