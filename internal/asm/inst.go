package asm

import (
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// emitInst translates one (possibly pseudo) instruction statement.
func (a *assembler) emitInst(s stmt) error {
	switch s.name {
	case "nop":
		a.push(s, isa.Inst{Op: isa.SLL})
		return nil
	case "move":
		if err := a.need(s, 2); err != nil {
			return err
		}
		rd, err := parseReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := parseReg(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: isa.ADD, Rd: rd, Rs: rs})
		return nil
	case "not", "neg":
		if err := a.need(s, 2); err != nil {
			return err
		}
		rd, err := parseReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := parseReg(s.args[1], s.line)
		if err != nil {
			return err
		}
		if s.name == "not" {
			a.push(s, isa.Inst{Op: isa.NOR, Rd: rd, Rs: rs, Rt: isa.Zero})
		} else {
			a.push(s, isa.Inst{Op: isa.SUB, Rd: rd, Rs: isa.Zero, Rt: rs})
		}
		return nil
	case "li":
		return a.emitLI(s)
	case "la":
		return a.emitLA(s)
	case "b":
		if err := a.need(s, 1); err != nil {
			return err
		}
		disp, err := a.branchDisp(s.args[0], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: isa.BEQ, Imm: disp})
		return nil
	case "beqz", "bnez":
		if err := a.need(s, 2); err != nil {
			return err
		}
		rs, err := parseReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		disp, err := a.branchDisp(s.args[1], s.line)
		if err != nil {
			return err
		}
		op := isa.BEQ
		if s.name == "bnez" {
			op = isa.BNE
		}
		a.push(s, isa.Inst{Op: op, Rs: rs, Imm: disp})
		return nil
	case "blt", "ble", "bgt", "bge", "bltu", "bleu", "bgtu", "bgeu":
		return a.emitCmpBranch(s)
	}
	op, ok := lookupMnemonic(s.name)
	if !ok {
		return errLine(s.line, "unknown mnemonic %q", s.name)
	}
	switch {
	case op.IsMem():
		return a.emitMem(s, op)
	case op == isa.SYSCALL:
		a.push(s, isa.Inst{Op: op})
		return nil
	case op == isa.LUI:
		if err := a.need(s, 2); err != nil {
			return err
		}
		rd, err := parseReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		imm, err := parseImmRef(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.pushImm(s, isa.Inst{Op: op, Rd: rd}, imm)
		return nil
	case op == isa.J || op == isa.JAL:
		if err := a.need(s, 1); err != nil {
			return err
		}
		arg := s.args[0]
		if isSymbolOperand(arg) {
			a.relocs = append(a.relocs, prog.Reloc{Kind: prog.RelJump, Sym: arg, InstIndex: len(a.text)})
			a.push(s, isa.Inst{Op: op})
			return nil
		}
		v, err := parseInt32(arg, s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Imm: v})
		return nil
	case op == isa.JR:
		if err := a.need(s, 1); err != nil {
			return err
		}
		rs, err := parseReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Rs: rs})
		return nil
	case op == isa.JALR:
		var rdArg, rsArg string
		switch len(s.args) {
		case 1:
			rdArg, rsArg = "$ra", s.args[0]
		case 2:
			rdArg, rsArg = s.args[0], s.args[1]
		default:
			return errLine(s.line, "jalr needs 1 or 2 operands")
		}
		rd, err := parseReg(rdArg, s.line)
		if err != nil {
			return err
		}
		rs, err := parseReg(rsArg, s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Rd: rd, Rs: rs})
		return nil
	case op == isa.BEQ || op == isa.BNE:
		if err := a.need(s, 3); err != nil {
			return err
		}
		rs, err := parseReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rt, err := parseReg(s.args[1], s.line)
		if err != nil {
			return err
		}
		disp, err := a.branchDisp(s.args[2], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Rs: rs, Rt: rt, Imm: disp})
		return nil
	case op == isa.BLEZ || op == isa.BGTZ || op == isa.BLTZ || op == isa.BGEZ:
		if err := a.need(s, 2); err != nil {
			return err
		}
		rs, err := parseReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		disp, err := a.branchDisp(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Rs: rs, Imm: disp})
		return nil
	case op == isa.BC1T || op == isa.BC1F:
		if err := a.need(s, 1); err != nil {
			return err
		}
		disp, err := a.branchDisp(s.args[0], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Imm: disp})
		return nil
	case op == isa.MTC1:
		if err := a.need(s, 2); err != nil {
			return err
		}
		fd, err := parseFPReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := parseReg(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Rd: fd, Rs: rs})
		return nil
	case op == isa.MFC1:
		if err := a.need(s, 2); err != nil {
			return err
		}
		rd, err := parseReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		fs, err := parseFPReg(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Rd: rd, Rs: fs})
		return nil
	case op == isa.FCLT || op == isa.FCLE || op == isa.FCEQ:
		if err := a.need(s, 2); err != nil {
			return err
		}
		fs, err := parseFPReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		ft, err := parseFPReg(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Rs: fs, Rt: ft})
		return nil
	case op == isa.FNEG || op == isa.FABS || op == isa.FMOV || op == isa.CVTDW || op == isa.CVTWD:
		if err := a.need(s, 2); err != nil {
			return err
		}
		fd, err := parseFPReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		fs, err := parseFPReg(s.args[1], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Rd: fd, Rs: fs})
		return nil
	case op.FPDest(): // fadd etc.
		if err := a.need(s, 3); err != nil {
			return err
		}
		fd, err := parseFPReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		fs, err := parseFPReg(s.args[1], s.line)
		if err != nil {
			return err
		}
		ft, err := parseFPReg(s.args[2], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Rd: fd, Rs: fs, Rt: ft})
		return nil
	case op == isa.SLL || op == isa.SRL || op == isa.SRA ||
		op == isa.ADDI || op == isa.ANDI || op == isa.ORI || op == isa.XORI ||
		op == isa.SLTI || op == isa.SLTIU:
		if err := a.need(s, 3); err != nil {
			return err
		}
		rd, err := parseReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := parseReg(s.args[1], s.line)
		if err != nil {
			return err
		}
		imm, err := parseImmRef(s.args[2], s.line)
		if err != nil {
			return err
		}
		a.pushImm(s, isa.Inst{Op: op, Rd: rd, Rs: rs}, imm)
		return nil
	default: // three-register ALU
		if err := a.need(s, 3); err != nil {
			return err
		}
		rd, err := parseReg(s.args[0], s.line)
		if err != nil {
			return err
		}
		rs, err := parseReg(s.args[1], s.line)
		if err != nil {
			return err
		}
		rt, err := parseReg(s.args[2], s.line)
		if err != nil {
			return err
		}
		a.push(s, isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})
		return nil
	}
}

func (a *assembler) emitLI(s stmt) error {
	if err := a.need(s, 2); err != nil {
		return err
	}
	rd, err := parseReg(s.args[0], s.line)
	if err != nil {
		return err
	}
	v, err := parseInt32(s.args[1], s.line)
	if err != nil {
		return err
	}
	switch {
	case fitsSigned16(v):
		a.push(s, isa.Inst{Op: isa.ADDI, Rd: rd, Imm: v})
	case fitsUnsigned16(v):
		a.push(s, isa.Inst{Op: isa.ORI, Rd: rd, Imm: v})
	case v&0xFFFF == 0:
		a.push(s, isa.Inst{Op: isa.LUI, Rd: rd, Imm: int32(uint32(v) >> 16)})
	default:
		a.push(s, isa.Inst{Op: isa.LUI, Rd: rd, Imm: int32(uint32(v) >> 16)})
		a.push(s, isa.Inst{Op: isa.ORI, Rd: rd, Rs: rd, Imm: int32(uint32(v) & 0xFFFF)})
	}
	return nil
}

func (a *assembler) emitLA(s stmt) error {
	if err := a.need(s, 2); err != nil {
		return err
	}
	rd, err := parseReg(s.args[0], s.line)
	if err != nil {
		return err
	}
	sym, add, err := splitSymRef(s.args[1], s.line)
	if err != nil {
		return err
	}
	if _, ok := a.syms[sym]; !ok {
		return errLine(s.line, "undefined symbol %q", sym)
	}
	if a.symIsSmall(sym) {
		a.pushImm(s, isa.Inst{Op: isa.ADDI, Rd: rd, Rs: isa.GP},
			immRef{val: add, kind: prog.RelGPRel, sym: sym, reloc: true})
		return nil
	}
	a.pushImm(s, isa.Inst{Op: isa.LUI, Rd: rd},
		immRef{val: add, kind: prog.RelHi16, sym: sym, reloc: true})
	a.pushImm(s, isa.Inst{Op: isa.ADDI, Rd: rd, Rs: rd},
		immRef{val: add, kind: prog.RelLo16, sym: sym, reloc: true})
	return nil
}

func (a *assembler) emitCmpBranch(s stmt) error {
	if err := a.need(s, 3); err != nil {
		return err
	}
	rs, err := parseReg(s.args[0], s.line)
	if err != nil {
		return err
	}
	rt, err := parseReg(s.args[1], s.line)
	if err != nil {
		return err
	}
	sltOp := isa.SLT
	if strings.HasSuffix(s.name, "u") {
		sltOp = isa.SLTU
	}
	base := strings.TrimSuffix(s.name, "u")
	// blt a,b: slt at,a,b; bne.  bge a,b: slt at,a,b; beq.
	// bgt a,b: slt at,b,a; bne.  ble a,b: slt at,b,a; beq.
	x, y := rs, rt
	brOp := isa.BNE
	switch base {
	case "bge":
		brOp = isa.BEQ
	case "bgt":
		x, y = rt, rs
	case "ble":
		x, y = rt, rs
		brOp = isa.BEQ
	}
	a.push(s, isa.Inst{Op: sltOp, Rd: isa.AT, Rs: x, Rt: y})
	disp, err := a.branchDisp(s.args[2], s.line)
	if err != nil {
		return err
	}
	a.push(s, isa.Inst{Op: brOp, Rs: isa.AT, Imm: disp})
	return nil
}

// emitMem handles loads and stores in all addressing forms, including bare
// symbol operands.
func (a *assembler) emitMem(s stmt, op isa.Op) error {
	if err := a.need(s, 2); err != nil {
		return err
	}
	fp := op.FPDest() || op.FPSrc()
	var data isa.Reg
	var err error
	if fp {
		data, err = parseFPReg(s.args[0], s.line)
	} else {
		data, err = parseReg(s.args[0], s.line)
	}
	if err != nil {
		return err
	}
	m, err := parseMemOperand(s.args[1], s.line)
	if err != nil {
		return err
	}

	build := func(o isa.Op, base isa.Reg, imm immRef, index isa.Reg) {
		in := isa.Inst{Op: o, Rs: base}
		switch o.Mode() {
		case isa.AMReg:
			in.Rt = index
			in.Rd = data
			a.push(s, in)
		default:
			if o.IsStore() {
				in.Rt = data
			} else {
				in.Rd = data
			}
			a.pushImm(s, in, imm)
		}
	}

	switch m.form {
	case isa.AMConst:
		o, err := modeVariant(op, isa.AMConst, s.line)
		if err != nil {
			return err
		}
		build(o, m.base, m.off, 0)
	case isa.AMReg:
		o, err := modeVariant(op, isa.AMReg, s.line)
		if err != nil {
			return err
		}
		build(o, m.base, immRef{}, m.index)
	case isa.AMPost:
		o, err := modeVariant(op, isa.AMPost, s.line)
		if err != nil {
			return err
		}
		build(o, m.base, m.off, 0)
	case isa.AMNone: // bare symbol
		if _, ok := a.syms[m.sym]; !ok {
			return errLine(s.line, "undefined symbol %q", m.sym)
		}
		o, err := modeVariant(op, isa.AMConst, s.line)
		if err != nil {
			return err
		}
		if a.symIsSmall(m.sym) {
			build(o, isa.GP, immRef{val: m.add, kind: prog.RelGPRel, sym: m.sym, reloc: true}, 0)
			return nil
		}
		a.pushImm(s, isa.Inst{Op: isa.LUI, Rd: isa.AT},
			immRef{val: m.add, kind: prog.RelHi16, sym: m.sym, reloc: true})
		build(o, isa.AT, immRef{val: m.add, kind: prog.RelLo16, sym: m.sym, reloc: true}, 0)
	}
	return nil
}

// modeVariant maps a base memory op to the requested addressing-mode
// variant (e.g. LW + AMReg -> LWX).
func modeVariant(op isa.Op, mode isa.AddrMode, line int) (isa.Op, error) {
	if op.Mode() == mode {
		return op, nil
	}
	type key struct {
		op   isa.Op
		mode isa.AddrMode
	}
	variants := map[key]isa.Op{
		{isa.LB, isa.AMReg}:    isa.LBX,
		{isa.LBU, isa.AMReg}:   isa.LBUX,
		{isa.LH, isa.AMReg}:    isa.LHX,
		{isa.LHU, isa.AMReg}:   isa.LHUX,
		{isa.LW, isa.AMReg}:    isa.LWX,
		{isa.SB, isa.AMReg}:    isa.SBX,
		{isa.SH, isa.AMReg}:    isa.SHX,
		{isa.SW, isa.AMReg}:    isa.SWX,
		{isa.LFD, isa.AMReg}:   isa.LFDX,
		{isa.SFD, isa.AMReg}:   isa.SFDX,
		{isa.LW, isa.AMPost}:   isa.LWPI,
		{isa.SW, isa.AMPost}:   isa.SWPI,
		{isa.LFD, isa.AMPost}:  isa.LFDPI,
		{isa.SFD, isa.AMPost}:  isa.SFDPI,
		{isa.LWPI, isa.AMPost}: isa.LWPI,
	}
	if v, ok := variants[key{op, mode}]; ok {
		return v, nil
	}
	return isa.BAD, errLine(line, "%v does not support this addressing mode", op)
}
