package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/prog"
)

func mustAssemble(t *testing.T, src string) *prog.Object {
	t.Helper()
	o, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return o
}

func mustLink(t *testing.T, src string, cfg prog.Config) *prog.Program {
	t.Helper()
	p, err := prog.Link(mustAssemble(t, src), cfg)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p
}

func TestBasicInstructions(t *testing.T) {
	src := `
	.text
main:
	addi $t0, $zero, 5
	add  $t1, $t0, $t0
	sw   $t1, 4($sp)
	lw   $t2, 4($sp)
	jr   $ra
`
	o := mustAssemble(t, src)
	if len(o.Text) != 5 {
		t.Fatalf("got %d insts, want 5", len(o.Text))
	}
	want := []isa.Inst{
		{Op: isa.ADDI, Rd: isa.T0, Imm: 5},
		{Op: isa.ADD, Rd: isa.T1, Rs: isa.T0, Rt: isa.T0},
		{Op: isa.SW, Rt: isa.T1, Rs: isa.SP, Imm: 4},
		{Op: isa.LW, Rd: isa.T2, Rs: isa.SP, Imm: 4},
		{Op: isa.JR, Rs: isa.RA},
	}
	for i, w := range want {
		if o.Text[i] != w {
			t.Errorf("inst %d = %+v, want %+v", i, o.Text[i], w)
		}
	}
}

func TestAddressingModes(t *testing.T) {
	src := `
main:	lw $t0, ($t1+$t2)
	sw $t0, ($t1+$t2)
	lw $t0, ($t1)+4
	sw $t0, ($t1)+-4
	lfd $f2, 8($sp)
	sfd $f2, ($t1+$t2)
	lb $t0, ($t3+$t4)
	jr $ra
`
	o := mustAssemble(t, src)
	wantOps := []isa.Op{isa.LWX, isa.SWX, isa.LWPI, isa.SWPI, isa.LFD, isa.SFDX, isa.LBX, isa.JR}
	for i, op := range wantOps {
		if o.Text[i].Op != op {
			t.Errorf("inst %d op = %v, want %v", i, o.Text[i].Op, op)
		}
	}
	if o.Text[2].Imm != 4 || o.Text[3].Imm != -4 {
		t.Errorf("post-inc imms = %d, %d", o.Text[2].Imm, o.Text[3].Imm)
	}
	if o.Text[5].Rd != 2 { // SFDX data register in Rd
		t.Errorf("sfdx data reg = %v", o.Text[5].Rd)
	}
}

func TestBranchesAndLabels(t *testing.T) {
	src := `
main:
loop:	addi $t0, $t0, -1
	bne $t0, $zero, loop
	beq $t0, $zero, done
	nop
done:	jr $ra
`
	o := mustAssemble(t, src)
	if o.Text[1].Imm != -8 { // back to loop: (0 - 2)*4
		t.Errorf("bne disp = %d, want -8", o.Text[1].Imm)
	}
	if o.Text[2].Imm != 4 { // forward over nop
		t.Errorf("beq disp = %d, want 4", o.Text[2].Imm)
	}
}

func TestPseudoExpansion(t *testing.T) {
	src := `
main:
	li $t0, 10
	li $t1, 0x12345678
	li $t2, 0xFFFF
	li $t3, 0x70000000
	move $t4, $t0
	not $t5, $t0
	neg $t6, $t0
	blt $t0, $t1, main
	bgeu $t0, $t1, main
	nop
	jr $ra
`
	o := mustAssemble(t, src)
	ops := make([]isa.Op, len(o.Text))
	for i := range o.Text {
		ops[i] = o.Text[i].Op
	}
	want := []isa.Op{
		isa.ADDI,         // li 10
		isa.LUI, isa.ORI, // li 0x12345678
		isa.ORI,          // li 0xFFFF
		isa.LUI,          // li 0x70000000
		isa.ADD,          // move
		isa.NOR,          // not
		isa.SUB,          // neg
		isa.SLT, isa.BNE, // blt
		isa.SLTU, isa.BEQ, // bgeu
		isa.SLL, // nop
		isa.JR,
	}
	if len(ops) != len(want) {
		t.Fatalf("got %d insts %v, want %d", len(ops), ops, len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("inst %d = %v, want %v", i, ops[i], want[i])
		}
	}
	if o.Text[1].Imm != 0x1234 || o.Text[2].Imm != 0x5678 {
		t.Errorf("li split = %#x, %#x", o.Text[1].Imm, o.Text[2].Imm)
	}
}

func TestGlobalAccessExpansion(t *testing.T) {
	src := `
	.sdata
small:	.word 7
	.data
big:	.space 100
	.text
main:
	lw $t0, small
	lw $t1, big
	la $t2, small
	la $t3, big+4
	sw $t0, small
	jr $ra
`
	o := mustAssemble(t, src)
	// small: 1 inst gp-relative; big: lui $at + lw.
	ops := []isa.Op{}
	for _, in := range o.Text {
		ops = append(ops, in.Op)
	}
	want := []isa.Op{isa.LW, isa.LUI, isa.LW, isa.ADDI, isa.LUI, isa.ADDI, isa.SW, isa.JR}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
	if o.Text[0].Rs != isa.GP {
		t.Errorf("small access base = %v, want $gp", o.Text[0].Rs)
	}
	if o.Text[2].Rs != isa.AT {
		t.Errorf("big access base = %v, want $at", o.Text[2].Rs)
	}
	// Check reloc kinds.
	kinds := map[prog.RelocKind]int{}
	for _, r := range o.Relocs {
		kinds[r.Kind]++
	}
	if kinds[prog.RelGPRel] != 3 || kinds[prog.RelHi16] != 2 || kinds[prog.RelLo16] != 2 {
		t.Errorf("reloc kinds = %v", kinds)
	}
}

func TestDataDirectives(t *testing.T) {
	src := `
	.data
w:	.word 1, 2, -3
h:	.half 0x1234
b:	.byte 1, 2, 3
d:	.double 1.5
s:	.asciiz "hi\n"
sp:	.space 5
	.balign 8
al:	.word 9
	.bss
	.comm buf, 64, 16
	.text
main:	jr $ra
`
	o := mustAssemble(t, src)
	if got := o.Symbols["w"].Off; got != 0 {
		t.Errorf("w off = %d", got)
	}
	if got := o.Symbols["h"].Off; got != 12 {
		t.Errorf("h off = %d", got)
	}
	if got := o.Symbols["b"].Off; got != 14 {
		t.Errorf("b off = %d", got)
	}
	if got := o.Symbols["d"].Off; got != 24 { // aligned to 8
		t.Errorf("d off = %d", got)
	}
	if got := o.Symbols["s"].Off; got != 32 {
		t.Errorf("s off = %d", got)
	}
	if got := o.Symbols["sp"].Off; got != 36 {
		t.Errorf("sp off = %d", got)
	}
	if got := o.Symbols["al"].Off; got != 48 {
		t.Errorf("al off = %d", got)
	}
	if got := o.Symbols["buf"]; got.Section != prog.SecBSS || got.Off != 0 || got.Size != 64 {
		t.Errorf("buf = %+v", got)
	}
	if o.BSSSize != 64 {
		t.Errorf("bss size = %d", o.BSSSize)
	}
	// .word -3 little endian
	if o.Data[8] != 0xFD || o.Data[9] != 0xFF {
		t.Errorf("word -3 bytes = % x", o.Data[8:12])
	}
	if string(o.Data[32:36]) != "hi\n\x00" {
		t.Errorf("asciiz = %q", o.Data[32:36])
	}
}

func TestWordSymbolReloc(t *testing.T) {
	src := `
	.data
tab:	.word target, target+8
	.text
main:	jr $ra
target:	jr $ra
`
	p := mustLink(t, src, prog.DefaultConfig())
	m := p.NewMemory()
	base := p.Symbols["tab"]
	if got := m.Read32(base); got != p.Symbols["target"] {
		t.Errorf("tab[0] = %#x, want %#x", got, p.Symbols["target"])
	}
	if got := m.Read32(base + 4); got != p.Symbols["target"]+8 {
		t.Errorf("tab[1] = %#x", got)
	}
}

func TestLinkLayoutStock(t *testing.T) {
	src := `
	.sdata
g:	.word 1
	.data
d:	.space 100
	.text
main:	jr $ra
`
	p := mustLink(t, src, prog.DefaultConfig())
	if p.Symbols["d"] != 0x10000000 {
		t.Errorf("data base = %#x", p.Symbols["d"])
	}
	// sdata follows data (8-aligned): gp depends on data size.
	if p.GP != 0x10000068 {
		t.Errorf("gp = %#x, want 0x10000068", p.GP)
	}
	if p.Symbols["g"] != p.GP {
		t.Errorf("g = %#x", p.Symbols["g"])
	}
}

func TestLinkLayoutAlignGP(t *testing.T) {
	src := `
	.sdata
g:	.word 1
g2:	.space 300
	.data
d:	.space 100
	.text
main:	jr $ra
`
	cfg := prog.DefaultConfig()
	cfg.AlignGP = true
	p := mustLink(t, src, cfg)
	// Region is 304 bytes -> boundary 512.
	if p.GP%512 != 0 {
		t.Errorf("gp = %#x not 512-aligned", p.GP)
	}
	if p.Symbols["g"] != p.GP || p.Symbols["g2"] != p.GP+4 {
		t.Errorf("sdata symbols misplaced: g=%#x g2=%#x gp=%#x", p.Symbols["g"], p.Symbols["g2"], p.GP)
	}
	// GP-relative offsets must all be positive: check the instruction.
	src2 := `
	.sdata
x:	.space 64
y:	.word 5
	.text
main:	lw $t0, y
	jr $ra
`
	p2 := mustLink(t, src2, cfg)
	if p2.Insts[0].Imm != 64 {
		t.Errorf("gp offset = %d, want 64", p2.Insts[0].Imm)
	}
}

func TestJumpReloc(t *testing.T) {
	src := `
main:	jal helper
	jr $ra
helper:	jr $ra
`
	p := mustLink(t, src, prog.DefaultConfig())
	if got := uint32(p.Insts[0].Imm); got != p.Symbols["helper"] {
		t.Errorf("jal target = %#x, want %#x", got, p.Symbols["helper"])
	}
}

func TestErrors(t *testing.T) {
	cases := []string{
		"main:\n\tbogus $t0, $t1\n",
		"main:\n\tlw $t0, undefined_symbol\n",
		"main:\n\tadd $t0, $t1\n",            // missing operand
		"main:\n\tlw $t0, 4($nosuch)\n",      // bad register
		"main:\n\tbne $t0, $zero, nowhere\n", // undefined label
		"main:\n\tli $t0\n",
		"main:\n.word 1\n.data\nmain: .word 2\n", // duplicate symbol
		".data\nx: .double oops\n.text\nmain: jr $ra\n",
		".data\nx: .asciiz bad\n.text\nmain: jr $ra\n",
		"main:\n\tlbu $t0, ($t1)+4\n", // unsupported post-inc width
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble succeeded for %q", src)
		}
	}
}

func TestCommentsAndFormatting(t *testing.T) {
	src := strings.Join([]string{
		"# full line comment",
		"main:   addi $t0, $zero, 1   # trailing",
		"        addi $t0, $t0, 2     ; alt comment",
		"lab1: lab2: jr $ra",
	}, "\n")
	o := mustAssemble(t, src)
	if len(o.Text) != 3 {
		t.Fatalf("got %d insts", len(o.Text))
	}
	if o.Symbols["lab1"].Off != 8 || o.Symbols["lab2"].Off != 8 {
		t.Error("stacked labels wrong")
	}
}

// TestHugeDirectivesRejected pins the resource-exhaustion fix found by
// FuzzAsmRoundtrip: size and alignment operands are attacker-controlled
// 32-bit values, and the assembler used to materialize them byte by byte
// (".space 4294967295" allocated 4GB; ".balign 2147483648" spent over a
// minute padding). Oversized requests must be rejected during layout,
// before any image bytes are built.
func TestHugeDirectivesRejected(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"space-4g", ".data\n.space 4294967295\n"},
		{"space-sum", ".data\n.space 200000000\n.space 200000000\n"},
		{"balign-2g", ".data\nx: .word 1\n.balign 2147483648\ny: .word 2\n"},
		{"balign-8k", ".data\n.balign 8192\n"},
		{"comm-4g", ".comm big, 4294967295\n"},
		{"comm-sum", ".comm a, 200000000\n.comm b, 200000000\n"},
		{"comm-align-1m", ".comm big, 16, 1048576\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Assemble(tc.src); err == nil {
				t.Fatalf("assembled oversized directive:\n%s", tc.src)
			}
		})
	}

	// Reasonable sizes still assemble, with the image fully materialized.
	o := mustAssemble(t, ".data\nbuf: .space 4096\n.balign 4096\nx: .word 7\n")
	if len(o.Data) != 4096+4 {
		t.Fatalf("data image is %d bytes, want %d", len(o.Data), 4096+4)
	}
	if got := o.Symbols["x"].Off; got != 4096 {
		t.Fatalf("x placed at %d, want 4096", got)
	}
}
