package asm

import (
	"encoding/binary"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

// lookupMnemonic resolves a real (non-pseudo) mnemonic.
func lookupMnemonic(name string) (isa.Op, bool) { return isa.OpByName(name) }

func parseInt32(s string, line int) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil || v < math.MinInt32 || v > math.MaxUint32 {
		return 0, errLine(line, "bad integer %q", s)
	}
	return int32(v), nil // values in [2^31, 2^32) wrap to their bit pattern
}

// reg parses an integer register operand.
func parseReg(s string, line int) (isa.Reg, error) {
	if !strings.HasPrefix(s, "$") {
		return 0, errLine(line, "expected register, got %q", s)
	}
	r, ok := isa.RegByName(s[1:])
	if !ok {
		return 0, errLine(line, "unknown register %q", s)
	}
	return r, nil
}

// parseFPReg parses "$fN".
func parseFPReg(s string, line int) (isa.Reg, error) {
	if !strings.HasPrefix(s, "$f") {
		return 0, errLine(line, "expected FP register, got %q", s)
	}
	n, err := strconv.Atoi(s[2:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, errLine(line, "unknown FP register %q", s)
	}
	return isa.Reg(n), nil
}

// immRef is an immediate that may carry a relocation.
type immRef struct {
	val   int32
	kind  prog.RelocKind
	sym   string
	reloc bool
}

// parseImmRef parses an immediate or a %hi/%lo/%gprel symbol expression.
func parseImmRef(s string, line int) (immRef, error) {
	if strings.HasPrefix(s, "%") {
		open := strings.IndexByte(s, '(')
		if open < 0 || !strings.HasSuffix(s, ")") {
			return immRef{}, errLine(line, "bad reloc expression %q", s)
		}
		var kind prog.RelocKind
		switch s[:open] {
		case "%hi":
			kind = prog.RelHi16
		case "%lo":
			kind = prog.RelLo16
		case "%gprel":
			kind = prog.RelGPRel
		default:
			return immRef{}, errLine(line, "unknown reloc %q", s[:open])
		}
		sym, add, err := splitSymRef(s[open+1:len(s)-1], line)
		if err != nil {
			return immRef{}, err
		}
		return immRef{val: add, kind: kind, sym: sym, reloc: true}, nil
	}
	v, err := parseInt32(s, line)
	if err != nil {
		return immRef{}, err
	}
	return immRef{val: v}, nil
}

// memOperand describes a parsed memory operand.
type memOperand struct {
	form  isa.AddrMode // AMConst, AMReg, AMPost; AMNone for bare symbol
	base  isa.Reg
	index isa.Reg
	off   immRef
	sym   string // bare symbol form
	add   int32
}

func parseMemOperand(arg string, line int) (memOperand, error) {
	if isSymbolOperand(arg) {
		sym, add, err := splitSymRef(arg, line)
		if err != nil {
			return memOperand{}, err
		}
		return memOperand{form: isa.AMNone, sym: sym, add: add}, nil
	}
	open := strings.IndexByte(arg, '(')
	if open < 0 {
		return memOperand{}, errLine(line, "bad memory operand %q", arg)
	}
	// %lo(sym)($at): the offset expression itself contains parens.
	if strings.HasPrefix(arg, "%") {
		close1 := strings.IndexByte(arg, ')')
		if close1 < 0 {
			return memOperand{}, errLine(line, "bad memory operand %q", arg)
		}
		open = strings.IndexByte(arg[close1:], '(')
		if open < 0 {
			return memOperand{}, errLine(line, "bad memory operand %q", arg)
		}
		open += close1
	}
	prefix := strings.TrimSpace(arg[:open])
	rest := arg[open:]
	close2 := strings.LastIndexByte(rest, ')')
	if close2 < 0 {
		return memOperand{}, errLine(line, "unbalanced parens in %q", arg)
	}
	inside := strings.TrimSpace(rest[1:close2])
	suffix := strings.TrimSpace(rest[close2+1:])

	if plus := strings.IndexByte(inside, '+'); plus >= 0 {
		// ($base+$index)
		if prefix != "" || suffix != "" {
			return memOperand{}, errLine(line, "bad register+register operand %q", arg)
		}
		base, err := parseReg(strings.TrimSpace(inside[:plus]), line)
		if err != nil {
			return memOperand{}, err
		}
		idx, err := parseReg(strings.TrimSpace(inside[plus+1:]), line)
		if err != nil {
			return memOperand{}, err
		}
		return memOperand{form: isa.AMReg, base: base, index: idx}, nil
	}
	base, err := parseReg(inside, line)
	if err != nil {
		return memOperand{}, err
	}
	if suffix != "" {
		// ($base)+imm or ($base)-imm: post-increment.
		if prefix != "" {
			return memOperand{}, errLine(line, "bad post-increment operand %q", arg)
		}
		inc, err := parseInt32(strings.TrimPrefix(suffix, "+"), line)
		if err != nil {
			return memOperand{}, err
		}
		return memOperand{form: isa.AMPost, base: base, off: immRef{val: inc}}, nil
	}
	off := immRef{}
	if prefix != "" {
		if off, err = parseImmRef(prefix, line); err != nil {
			return memOperand{}, err
		}
	}
	return memOperand{form: isa.AMConst, base: base, off: off}, nil
}

// emit generates instructions and data images.
func (a *assembler) emit() error {
	var off [prog.NumSections]uint32
	for _, s := range a.stmts {
		switch s.kind {
		case stLabel:
			// Offsets were fixed during layout; nothing to emit.
		case stDirective:
			if err := a.emitDirective(s, &off); err != nil {
				return err
			}
		case stInst:
			want, err := a.instSize(s)
			if err != nil {
				return err
			}
			before := len(a.text)
			if err := a.emitInst(s); err != nil {
				return err
			}
			if got := len(a.text) - before; got != want {
				return errLine(s.line, "internal: %s expanded to %d insts, layout said %d", s.name, got, want)
			}
		}
	}
	return nil
}

func (a *assembler) emitDirective(s stmt, off *[prog.NumSections]uint32) error {
	size, al, err := a.directiveSize(s)
	if err != nil {
		return err
	}
	if s.sec == prog.SecText || s.name == ".comm" {
		return nil
	}
	img := &a.images[s.sec]
	if al > 1 {
		target := alignUp(off[s.sec], al)
		*img = append(*img, make([]byte, target-off[s.sec])...)
		off[s.sec] = target
	}
	start := off[s.sec]
	switch s.name {
	case ".word":
		for i, arg := range s.args {
			if isSymbolOperand(arg) {
				sym, add, err := splitSymRef(arg, s.line)
				if err != nil {
					return err
				}
				a.relocs = append(a.relocs, prog.Reloc{
					Kind: prog.RelWord32, Sym: sym, Addend: add,
					Section: s.sec, Off: start + uint32(4*i),
				})
				*img = append(*img, 0, 0, 0, 0)
				continue
			}
			v, err := parseInt32(arg, s.line)
			if err != nil {
				return err
			}
			*img = binary.LittleEndian.AppendUint32(*img, uint32(v))
		}
	case ".half":
		for _, arg := range s.args {
			v, err := parseInt32(arg, s.line)
			if err != nil {
				return err
			}
			*img = binary.LittleEndian.AppendUint16(*img, uint16(v))
		}
	case ".byte":
		for _, arg := range s.args {
			v, err := parseInt32(arg, s.line)
			if err != nil {
				return err
			}
			*img = append(*img, byte(v))
		}
	case ".double":
		for _, arg := range s.args {
			f, err := strconv.ParseFloat(strings.TrimSpace(arg), 64)
			if err != nil {
				return errLine(s.line, "bad double %q", arg)
			}
			*img = binary.LittleEndian.AppendUint64(*img, math.Float64bits(f))
		}
	case ".space":
		*img = append(*img, make([]byte, size)...)
	case ".ascii", ".asciiz":
		str, err := decodeString(s.args[0], s.line)
		if err != nil {
			return err
		}
		*img = append(*img, str...)
		if s.name == ".asciiz" {
			*img = append(*img, 0)
		}
	}
	off[s.sec] = uint32(len(*img))
	return nil
}

// push appends one machine instruction.
func (a *assembler) push(s stmt, in isa.Inst) {
	a.text = append(a.text, in)
	a.srcLines = append(a.srcLines, s.line)
}

// pushImm appends an instruction whose immediate may carry a relocation.
func (a *assembler) pushImm(s stmt, in isa.Inst, imm immRef) {
	in.Imm = imm.val
	if imm.reloc {
		a.relocs = append(a.relocs, prog.Reloc{
			Kind: imm.kind, Sym: imm.sym, Addend: imm.val, InstIndex: len(a.text),
		})
		in.Imm = 0
	}
	a.push(s, in)
}

// branchDisp resolves a branch target operand into a byte displacement
// relative to the instruction after the branch being emitted.
func (a *assembler) branchDisp(arg string, line int) (int32, error) {
	if idx, ok := a.textLabels[arg]; ok {
		return int32(idx-(len(a.text)+1)) * 4, nil
	}
	if isIdent(arg) && !strings.HasPrefix(arg, "$") {
		return 0, errLine(line, "undefined label %q", arg)
	}
	return parseInt32(arg, line)
}

func (a *assembler) need(s stmt, n int) error {
	if len(s.args) != n {
		return errLine(s.line, "%s needs %d operands, got %d", s.name, n, len(s.args))
	}
	return nil
}
