// Package asm implements a two-pass assembler for the extended MIPS-like
// ISA. It accepts a single translation unit (the compiler emits the whole
// program, runtime included, as one unit) and produces a relocatable
// prog.Object.
//
// Supported directives: .text .data .sdata .bss .globl .align (power of
// two) .balign (bytes) .word .half .byte .double .space .ascii .asciiz
// .comm. Labels end with ':'. Comments start with '#' or ';'.
//
// Pseudo-instructions: li, la, move, nop, b, beqz, bnez, not, neg,
// blt/ble/bgt/bge (+u variants), and symbol-operand loads/stores
// (e.g. "lw $t0, counter"), which expand to a single $gp-relative access
// for small-data symbols or a lui/$at pair otherwise — exactly the code
// shapes whose address-prediction behaviour the paper studies.
package asm

import (
	"fmt"
	"strings"

	"repro/internal/isa"
	"repro/internal/prog"
)

type stmtKind uint8

const (
	stLabel stmtKind = iota
	stDirective
	stInst
)

type stmt struct {
	kind stmtKind
	line int
	name string   // label name, directive name, or mnemonic
	args []string // raw operand strings
	sec  prog.SectionKind
}

type assembler struct {
	stmts []stmt
	syms  map[string]prog.Symbol
	// text emission
	text     []isa.Inst
	srcLines []int
	relocs   []prog.Reloc
	// data emission
	images [prog.NumSections][]byte
	bss    uint32
	// label -> text instruction index
	textLabels map[string]int
}

// Assemble translates source into a relocatable object.
func Assemble(src string) (*prog.Object, error) {
	a := &assembler{
		syms:       make(map[string]prog.Symbol),
		textLabels: make(map[string]int),
	}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	if err := a.emit(); err != nil {
		return nil, err
	}
	return &prog.Object{
		Text:     a.text,
		SData:    a.images[prog.SecSData],
		Data:     a.images[prog.SecData],
		BSSSize:  a.bss,
		Symbols:  a.syms,
		Relocs:   a.relocs,
		SrcLines: a.srcLines,
	}, nil
}

func errLine(line int, format string, args ...interface{}) error {
	return fmt.Errorf("asm: line %d: %s", line, fmt.Sprintf(format, args...))
}

// parse splits the source into statements and records the section each
// statement lives in.
func (a *assembler) parse(src string) error {
	sec := prog.SecText
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		for {
			// Peel leading labels.
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			head := strings.TrimSpace(line[:i])
			if !isIdent(head) {
				break
			}
			a.stmts = append(a.stmts, stmt{kind: stLabel, line: lineNo + 1, name: head, sec: sec})
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		name, rest := splitWord(line)
		if strings.HasPrefix(name, ".") {
			switch name {
			case ".text":
				sec = prog.SecText
			case ".data":
				sec = prog.SecData
			case ".sdata":
				sec = prog.SecSData
			case ".bss":
				sec = prog.SecBSS
			}
			a.stmts = append(a.stmts, stmt{kind: stDirective, line: lineNo + 1, name: name, args: splitArgs(rest), sec: sec})
			continue
		}
		a.stmts = append(a.stmts, stmt{kind: stInst, line: lineNo + 1, name: strings.ToLower(name), args: splitArgs(rest), sec: sec})
	}
	// First symbol sweep: record the defining section of every label and
	// every .comm, so pseudo-expansion sizes are known before layout.
	for _, s := range a.stmts {
		switch s.kind {
		case stLabel:
			if _, dup := a.syms[s.name]; dup {
				return errLine(s.line, "duplicate symbol %q", s.name)
			}
			a.syms[s.name] = prog.Symbol{Name: s.name, Section: s.sec}
		case stDirective:
			if s.name == ".comm" {
				if len(s.args) < 2 {
					return errLine(s.line, ".comm needs name, size")
				}
				name := s.args[0]
				if _, dup := a.syms[name]; dup {
					return errLine(s.line, "duplicate symbol %q", name)
				}
				a.syms[name] = prog.Symbol{Name: name, Section: prog.SecBSS}
			}
		}
	}
	return nil
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '"':
			if i == 0 || line[i-1] != '\\' {
				inStr = !inStr
			}
		case '#', ';':
			if !inStr {
				return line[:i]
			}
		}
	}
	return line
}

func splitWord(s string) (string, string) {
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i], strings.TrimSpace(s[i+1:])
		}
	}
	return s, ""
}

// splitArgs splits an operand list on commas, respecting parentheses and
// quoted strings.
func splitArgs(s string) []string {
	var args []string
	depth, inStr, start := 0, false, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				inStr = !inStr
			}
		case '(':
			if !inStr {
				depth++
			}
		case ')':
			if !inStr {
				depth--
			}
		case ',':
			if depth == 0 && !inStr {
				args = append(args, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	tail := strings.TrimSpace(s[start:])
	if tail != "" {
		args = append(args, tail)
	}
	return args
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '$', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
