package asm

import (
	"strconv"
	"strings"

	"repro/internal/prog"
)

// maxSectionBytes bounds every section image (and the BSS reservation).
// Directive sizes are attacker-controlled 32-bit values; without a cap a
// single ".space 4294967295" materializes a 4GB image. 256MB is far above
// any real program while keeping assembly time and memory bounded.
const maxSectionBytes = 1 << 28

// maxBalign bounds explicit alignment requests, mirroring .align's cap of
// 2^12: larger alignments only ever manufacture padding gigabytes.
const maxBalign = 1 << 12

// layout computes section offsets for every label and the expanded size of
// every instruction, so branch displacements can be resolved during emit.
func (a *assembler) layout() error {
	var off [prog.NumSections]uint32
	textIdx := 0
	// Data labels bind after the auto-alignment of the directive that
	// follows them, so "x: .double 1.0" labels the aligned datum.
	var pending []string
	flushPending := func() {
		for _, name := range pending {
			sym := a.syms[name]
			sym.Off = off[sym.Section]
			a.syms[name] = sym
		}
		pending = pending[:0]
	}
	for _, s := range a.stmts {
		switch s.kind {
		case stLabel:
			if s.sec == prog.SecText {
				sym := a.syms[s.name]
				sym.Off = uint32(textIdx * 4)
				a.syms[s.name] = sym
				a.textLabels[s.name] = textIdx
			} else {
				pending = append(pending, s.name)
			}
		case stDirective:
			if s.name == ".comm" {
				if err := a.allocComm(s); err != nil {
					return err
				}
				continue
			}
			n, al, err := a.directiveSize(s)
			if err != nil {
				return err
			}
			if al > 1 {
				off[s.sec] = alignUp(off[s.sec], al)
			}
			flushPending()
			off[s.sec] += n
			if off[s.sec] > maxSectionBytes {
				return errLine(s.line, "section grows past %d bytes", maxSectionBytes)
			}
		case stInst:
			flushPending() // labels in a data section before .text switch
			n, err := a.instSize(s)
			if err != nil {
				return err
			}
			textIdx += n
			if textIdx > maxSectionBytes/4 {
				return errLine(s.line, "text grows past %d instructions", maxSectionBytes/4)
			}
		}
	}
	flushPending()
	return nil
}

// allocComm reserves BSS space for a .comm directive (done once, during
// layout).
func (a *assembler) allocComm(s stmt) error {
	if len(s.args) < 2 {
		return errLine(s.line, ".comm needs name, size")
	}
	size, err := parseUint(s.args, 1, s.line)
	if err != nil {
		return err
	}
	al := uint32(4)
	if len(s.args) >= 3 {
		if al, err = parseUint(s.args, 2, s.line); err != nil {
			return err
		}
		if al == 0 || al&(al-1) != 0 {
			return errLine(s.line, ".comm alignment %d not a power of two", al)
		}
		if al > maxBalign {
			return errLine(s.line, ".comm alignment %d too large", al)
		}
	}
	if size > maxSectionBytes || a.bss > maxSectionBytes-size {
		return errLine(s.line, ".comm grows bss past %d bytes", maxSectionBytes)
	}
	a.bss = alignUp(a.bss, al)
	sym := a.syms[s.args[0]]
	sym.Off = a.bss
	sym.Size = size
	a.syms[s.args[0]] = sym
	a.bss += size
	return nil
}

func alignUp(v, a uint32) uint32 {
	if a <= 1 {
		return v
	}
	return (v + a - 1) &^ (a - 1)
}

// directiveSize returns (size, alignment) of a data directive. .comm
// directives allocate BSS immediately (their placement is independent of
// statement order).
func (a *assembler) directiveSize(s stmt) (size, align uint32, err error) {
	switch s.name {
	case ".text", ".data", ".sdata", ".bss", ".globl", ".ent", ".end":
		return 0, 1, nil
	case ".align":
		n, err := parseUint(s.args, 0, s.line)
		if err != nil {
			return 0, 0, err
		}
		if n > 12 {
			return 0, 0, errLine(s.line, ".align %d too large", n)
		}
		return 0, 1 << n, nil
	case ".balign":
		n, err := parseUint(s.args, 0, s.line)
		if err != nil {
			return 0, 0, err
		}
		if n == 0 || n&(n-1) != 0 {
			return 0, 0, errLine(s.line, ".balign %d not a power of two", n)
		}
		if n > maxBalign {
			return 0, 0, errLine(s.line, ".balign %d too large", n)
		}
		return 0, n, nil
	case ".word":
		return uint32(4 * len(s.args)), 4, nil
	case ".half":
		return uint32(2 * len(s.args)), 2, nil
	case ".byte":
		return uint32(len(s.args)), 1, nil
	case ".double":
		return uint32(8 * len(s.args)), 8, nil
	case ".space":
		n, err := parseUint(s.args, 0, s.line)
		if err != nil {
			return 0, 0, err
		}
		if n > maxSectionBytes {
			return 0, 0, errLine(s.line, ".space %d too large", n)
		}
		return n, 1, nil
	case ".ascii", ".asciiz":
		if len(s.args) != 1 {
			return 0, 0, errLine(s.line, "%s needs one string", s.name)
		}
		str, err := decodeString(s.args[0], s.line)
		if err != nil {
			return 0, 0, err
		}
		n := uint32(len(str))
		if s.name == ".asciiz" {
			n++
		}
		return n, 1, nil
	case ".comm":
		return 0, 1, nil
	}
	return 0, 0, errLine(s.line, "unknown directive %s", s.name)
}

func parseUint(args []string, i, line int) (uint32, error) {
	if i >= len(args) {
		return 0, errLine(line, "missing argument")
	}
	v, err := strconv.ParseUint(strings.TrimSpace(args[i]), 0, 32)
	if err != nil {
		return 0, errLine(line, "bad number %q", args[i])
	}
	return uint32(v), nil
}

func decodeString(lit string, line int) (string, error) {
	if len(lit) < 2 || lit[0] != '"' || lit[len(lit)-1] != '"' {
		return "", errLine(line, "bad string literal %s", lit)
	}
	body := lit[1 : len(lit)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", errLine(line, "trailing backslash in string")
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		default:
			return "", errLine(line, "bad escape \\%c", body[i])
		}
	}
	return b.String(), nil
}

// instSize returns the number of machine instructions a (possibly pseudo)
// instruction expands to. It must agree exactly with emitInst.
func (a *assembler) instSize(s stmt) (int, error) {
	switch s.name {
	case "li":
		if len(s.args) != 2 {
			return 0, errLine(s.line, "li needs 2 operands")
		}
		v, err := parseInt32(s.args[1], s.line)
		if err != nil {
			return 0, err
		}
		if fitsSigned16(v) || fitsUnsigned16(v) {
			return 1, nil
		}
		if v&0xFFFF == 0 {
			return 1, nil // lui alone
		}
		return 2, nil
	case "la":
		if len(s.args) != 2 {
			return 0, errLine(s.line, "la needs 2 operands")
		}
		sym, _, err := splitSymRef(s.args[1], s.line)
		if err != nil {
			return 0, err
		}
		if a.symIsSmall(sym) {
			return 1, nil
		}
		return 2, nil
	case "blt", "ble", "bgt", "bge", "bltu", "bleu", "bgtu", "bgeu":
		return 2, nil
	default:
		if op, ok := lookupMnemonic(s.name); ok && op.IsMem() {
			// A symbol operand expands to gp-relative (1) or lui+access (2).
			if len(s.args) == 2 && isSymbolOperand(s.args[1]) {
				sym, _, err := splitSymRef(s.args[1], s.line)
				if err != nil {
					return 0, err
				}
				if a.symIsSmall(sym) {
					return 1, nil
				}
				return 2, nil
			}
		}
		return 1, nil
	}
}

// symIsSmall reports whether sym lives in the gp-addressed global region.
func (a *assembler) symIsSmall(sym string) bool {
	s, ok := a.syms[sym]
	return ok && s.Section == prog.SecSData
}

func fitsSigned16(v int32) bool   { return v >= -32768 && v <= 32767 }
func fitsUnsigned16(v int32) bool { return v >= 0 && v <= 0xFFFF }

// isSymbolOperand reports whether a memory operand is a bare symbol
// reference rather than a register-based addressing form or a plain number.
func isSymbolOperand(arg string) bool {
	if arg == "" || strings.Contains(arg, "(") || strings.Contains(arg, "%") {
		return false
	}
	c := arg[0]
	if c == '$' || c == '-' || (c >= '0' && c <= '9') {
		return false
	}
	return true
}

// splitSymRef splits "sym", "sym+4", or "sym-4" into name and addend.
func splitSymRef(arg string, line int) (string, int32, error) {
	i := strings.IndexAny(arg, "+-")
	if i <= 0 {
		if !isIdent(arg) {
			return "", 0, errLine(line, "bad symbol reference %q", arg)
		}
		return arg, 0, nil
	}
	name := arg[:i]
	if !isIdent(name) {
		return "", 0, errLine(line, "bad symbol reference %q", arg)
	}
	v, err := strconv.ParseInt(arg[i:], 0, 32)
	if err != nil {
		return "", 0, errLine(line, "bad symbol addend %q", arg)
	}
	return name, int32(v), nil
}
