package difftest

import (
	"encoding/json"
	"math/rand"
	"testing"

	"repro/internal/emu"
	"repro/internal/minic"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/prog"
)

// recordingSink captures the full event stream for equality comparison.
type recordingSink struct {
	events []obs.Event
}

func (r *recordingSink) Event(e obs.Event) { r.events = append(r.events, e) }

// runBoth replays one stream under cfg with stall fast-forwarding enabled
// and disabled and fails the test unless the resulting RunRecords (cycles,
// stall partition, histograms, cache and FAC sections) are byte-identical
// and the observability event streams are element-identical.
func runBoth(t *testing.T, name string, cfg pipeline.Config, stream func() pipeline.Source) {
	t.Helper()

	slow := cfg
	slow.NoFastForward = true
	var slowSink, fastSink recordingSink
	slowStats, err := pipeline.RunObserved(slow, stream(), &slowSink)
	if err != nil {
		t.Fatalf("%s (no fast-forward): %v", name, err)
	}
	fastStats, err := pipeline.RunObserved(cfg, stream(), &fastSink)
	if err != nil {
		t.Fatalf("%s (fast-forward): %v", name, err)
	}

	slowRec, err := json.Marshal(slowStats.Record("ff", "", "test", name))
	if err != nil {
		t.Fatal(err)
	}
	fastRec, err := json.Marshal(fastStats.Record("ff", "", "test", name))
	if err != nil {
		t.Fatal(err)
	}
	if string(slowRec) != string(fastRec) {
		t.Errorf("%s: fast-forwarded RunRecord differs\n  slow: %s\n  fast: %s", name, slowRec, fastRec)
	}

	if len(slowSink.events) != len(fastSink.events) {
		t.Fatalf("%s: event stream length %d with fast-forward, %d without",
			name, len(fastSink.events), len(slowSink.events))
	}
	for i := range slowSink.events {
		if slowSink.events[i] != fastSink.events[i] {
			t.Fatalf("%s: event %d differs\n  slow: %+v\n  fast: %+v",
				name, i, slowSink.events[i], fastSink.events[i])
		}
	}
}

// TestFastForwardExact is the regression gate for stall fast-forwarding:
// across every oracle machine, replaying the same stream with and without
// fast-forwarding must produce identical timing, stall accounting, and
// event streams. Generated traces exercise the trace-replay path; a MiniC
// program exercises the emulator-backed (batched) path end to end.
func TestFastForwardExact(t *testing.T) {
	seeds := []int64{1, 5, 11}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, m := range Machines() {
		for _, seed := range seeds {
			trs := RandomTrace(rand.New(rand.NewSource(seed)), 3000)
			runBoth(t, m.Name, m.Cfg, func() pipeline.Source {
				return &sliceSource{trs: trs}
			})
		}
	}
}

// TestFastForwardExactProgram runs the whole stack (assembler, emulator,
// batched trace source) under one generated MiniC program per machine.
func TestFastForwardExactProgram(t *testing.T) {
	src := RandomMiniC(rand.New(rand.NewSource(42)))
	p := buildMiniC(t, src, minic.BaseOptions(), prog.DefaultConfig())
	for _, m := range Machines() {
		runBoth(t, m.Name, m.Cfg, func() pipeline.Source {
			e := emu.New(p)
			e.MaxInsts = 500_000
			return emuBatchSource{e}
		})
	}
}

// sliceSource replays a recorded trace slice.
type sliceSource struct {
	trs []emu.Trace
	i   int
}

func (s *sliceSource) Next() (emu.Trace, bool, error) {
	if s.i >= len(s.trs) {
		return emu.Trace{}, false, nil
	}
	tr := s.trs[s.i]
	s.i++
	return tr, true, nil
}

// emuBatchSource mirrors core's emulator adapter, including the batched
// path, without importing core (which would cycle).
type emuBatchSource struct {
	e *emu.Emulator
}

func (s emuBatchSource) Next() (emu.Trace, bool, error) {
	if s.e.Halted {
		return emu.Trace{}, false, nil
	}
	tr, err := s.e.Step()
	if err != nil {
		return emu.Trace{}, false, err
	}
	return tr, true, nil
}

func (s emuBatchSource) NextBatch(buf []emu.Trace) (int, error) {
	n := 0
	for n < len(buf) && !s.e.Halted {
		if err := s.e.StepInto(&buf[n]); err != nil {
			return 0, err
		}
		n++
	}
	return n, nil
}
