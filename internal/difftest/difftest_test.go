package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/prog"
)

// TestRandomTraceWellFormed pins the generator's contract: PC chaining
// through redirects, EffAddr == Base+Offset under every mode, and actual
// coverage of the speculative paths the old pipeline generator missed —
// taken branches, post-increment, and reg+reg addressing.
func TestRandomTraceWellFormed(t *testing.T) {
	trs := RandomTrace(rand.New(rand.NewSource(7)), 20000)
	if len(trs) != 20000 {
		t.Fatalf("got %d traces, want 20000", len(trs))
	}
	var taken, post, regreg, negIdx uint64
	for i, tr := range trs {
		if i+1 < len(trs) && trs[i+1].PC != tr.NextPC {
			t.Fatalf("trace %d: NextPC %#x but successor PC %#x", i, tr.NextPC, trs[i+1].PC)
		}
		if !tr.Inst.Op.IsControl() && tr.NextPC != tr.PC+isa.InstBytes {
			t.Fatalf("trace %d: non-control %v redirects %#x -> %#x", i, tr.Inst, tr.PC, tr.NextPC)
		}
		if tr.Inst.Op.IsMem() {
			want := tr.Base + tr.Offset
			if tr.Inst.Op.Mode() == isa.AMPost {
				want = tr.Base
				if tr.Offset != 0 {
					t.Fatalf("trace %d: post-increment with nonzero Offset %#x", i, tr.Offset)
				}
			}
			if tr.EffAddr != want {
				t.Fatalf("trace %d: %v EffAddr %#x != Base+Offset %#x", i, tr.Inst, tr.EffAddr, want)
			}
			if (tr.Inst.Op.Mode() == isa.AMReg) != tr.IsRegOffset {
				t.Fatalf("trace %d: %v IsRegOffset=%v", i, tr.Inst, tr.IsRegOffset)
			}
			switch tr.Inst.Op.Mode() {
			case isa.AMPost:
				post++
			case isa.AMReg:
				regreg++
				if tr.Offset&0x80000000 != 0 {
					negIdx++
				}
			}
		}
		if tr.Inst.Op.IsBranch() && tr.Taken {
			taken++
		}
	}
	if taken == 0 || post == 0 || regreg == 0 || negIdx == 0 {
		t.Fatalf("generator missed a speculative path: taken=%d post=%d regreg=%d negIdx=%d",
			taken, post, regreg, negIdx)
	}
}

// TestTraceOracle runs the full machine set over generated streams with
// the event-stream checker attached; any invariant violation in the
// timing model, the predictor, or the stall accounting fails here without
// needing the fuzzing engine.
func TestTraceOracle(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 5
	}
	for seed := int64(0); seed < int64(n); seed++ {
		trs := RandomTrace(rand.New(rand.NewSource(seed)), 3000)
		if err := RunTrace(trs, Machines()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestEmptyTrace pins the degenerate case: a zero-length stream still
// satisfies the partition invariants.
func TestEmptyTrace(t *testing.T) {
	if err := RunTrace(nil, Machines()); err != nil {
		t.Fatal(err)
	}
}

// TestOracleDetectsCorruption proves the checker has teeth: divorcing
// EffAddr from Base+Offset breaks the verified-prediction invariant, and
// a FAC machine must report it.
func TestOracleDetectsCorruption(t *testing.T) {
	trs := RandomTrace(rand.New(rand.NewSource(3)), 3000)
	corrupted := false
	for i := range trs {
		if trs[i].Inst.Op.IsLoad() && !trs[i].IsRegOffset && trs[i].Inst.Op.Mode() != isa.AMPost {
			trs[i].EffAddr += 1 << 20 // leaves block offset intact, breaks the address
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatal("trace has no constant-offset loads to corrupt")
	}
	var facMachines []Machine
	for _, m := range Machines() {
		if m.Cfg.FAC {
			facMachines = append(facMachines, m)
		}
	}
	if err := RunTrace(trs, facMachines); err == nil {
		t.Fatal("oracle accepted a corrupted trace")
	}
}

// TestMachinesValid ensures every oracle machine is a valid pipeline
// configuration.
func TestMachinesValid(t *testing.T) {
	for _, m := range Machines() {
		if err := m.Cfg.Validate(); err != nil {
			t.Errorf("machine %s: %v", m.Name, err)
		}
	}
}

// TestMiniCOracle runs a few whole-stack differential checks directly, so
// the plain test suite exercises the program-level oracle.
func TestMiniCOracle(t *testing.T) {
	n := 4
	if testing.Short() {
		n = 1
	}
	for seed := int64(100); seed < int64(100+n); seed++ {
		src := RandomMiniC(rand.New(rand.NewSource(seed)))
		p := buildMiniC(t, src, minic.BaseOptions(), prog.DefaultConfig())
		if err := Run(p, 2_000_000); err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
	}
}
