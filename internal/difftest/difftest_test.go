package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/pipeline"
	"repro/internal/prog"
)

// TestRandomTraceWellFormed pins the generator's contract: PC chaining
// through redirects, EffAddr == Base+Offset under every mode, and actual
// coverage of the speculative paths the old pipeline generator missed —
// taken branches, post-increment, and reg+reg addressing.
func TestRandomTraceWellFormed(t *testing.T) {
	trs := RandomTrace(rand.New(rand.NewSource(7)), 20000)
	if len(trs) != 20000 {
		t.Fatalf("got %d traces, want 20000", len(trs))
	}
	var taken, post, regreg, negIdx uint64
	for i, tr := range trs {
		if i+1 < len(trs) && trs[i+1].PC != tr.NextPC {
			t.Fatalf("trace %d: NextPC %#x but successor PC %#x", i, tr.NextPC, trs[i+1].PC)
		}
		if !tr.Inst.Op.IsControl() && tr.NextPC != tr.PC+isa.InstBytes {
			t.Fatalf("trace %d: non-control %v redirects %#x -> %#x", i, tr.Inst, tr.PC, tr.NextPC)
		}
		if tr.Inst.Op.IsMem() {
			want := tr.Base + tr.Offset
			if tr.Inst.Op.Mode() == isa.AMPost {
				want = tr.Base
				if tr.Offset != 0 {
					t.Fatalf("trace %d: post-increment with nonzero Offset %#x", i, tr.Offset)
				}
			}
			if tr.EffAddr != want {
				t.Fatalf("trace %d: %v EffAddr %#x != Base+Offset %#x", i, tr.Inst, tr.EffAddr, want)
			}
			if (tr.Inst.Op.Mode() == isa.AMReg) != tr.IsRegOffset {
				t.Fatalf("trace %d: %v IsRegOffset=%v", i, tr.Inst, tr.IsRegOffset)
			}
			switch tr.Inst.Op.Mode() {
			case isa.AMPost:
				post++
			case isa.AMReg:
				regreg++
				if tr.Offset&0x80000000 != 0 {
					negIdx++
				}
			}
		}
		if tr.Inst.Op.IsBranch() && tr.Taken {
			taken++
		}
	}
	if taken == 0 || post == 0 || regreg == 0 || negIdx == 0 {
		t.Fatalf("generator missed a speculative path: taken=%d post=%d regreg=%d negIdx=%d",
			taken, post, regreg, negIdx)
	}
}

// TestTraceOracle runs the full machine set over generated streams with
// the event-stream checker attached; any invariant violation in the
// timing model, the predictor, or the stall accounting fails here without
// needing the fuzzing engine.
func TestTraceOracle(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 5
	}
	for seed := int64(0); seed < int64(n); seed++ {
		trs := RandomTrace(rand.New(rand.NewSource(seed)), 3000)
		if err := RunTrace(trs, Machines()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestEmptyTrace pins the degenerate case: a zero-length stream still
// satisfies the partition invariants.
func TestEmptyTrace(t *testing.T) {
	if err := RunTrace(nil, Machines()); err != nil {
		t.Fatal(err)
	}
}

// TestOracleDetectsCorruption proves the checker has teeth: divorcing
// EffAddr from Base+Offset breaks the verified-prediction invariant, and
// a FAC machine must report it.
func TestOracleDetectsCorruption(t *testing.T) {
	trs := RandomTrace(rand.New(rand.NewSource(3)), 3000)
	corrupted := false
	for i := range trs {
		if trs[i].Inst.Op.IsLoad() && !trs[i].IsRegOffset && trs[i].Inst.Op.Mode() != isa.AMPost {
			trs[i].EffAddr += 1 << 20 // leaves block offset intact, breaks the address
			corrupted = true
		}
	}
	if !corrupted {
		t.Fatal("trace has no constant-offset loads to corrupt")
	}
	var facMachines []Machine
	for _, m := range Machines() {
		if m.Cfg.FAC {
			facMachines = append(facMachines, m)
		}
	}
	if err := RunTrace(trs, facMachines); err == nil {
		t.Fatal("oracle accepted a corrupted trace")
	}
}

// TestMachinesValid ensures every oracle machine is a valid pipeline
// configuration.
func TestMachinesValid(t *testing.T) {
	for _, m := range Machines() {
		if err := m.Cfg.Validate(); err != nil {
			t.Errorf("machine %s: %v", m.Name, err)
		}
	}
}

// chaseSeedSrc walks an 8-cycle permutation: each load's address is the
// value of the previous load, with no two consecutive equal deltas, so
// neither a last-address nor a two-delta stride table can ever guess the
// next address. This is the canonical stride-prediction-defeating shape.
const chaseSeedSrc = `
.data
perm:	.word 5, 7, 6, 4, 0, 1, 3, 2

.text
main:
	la $t0, perm
	li $t1, 0
	li $t2, 64
chase:
	sll $t3, $t1, 2
	add $t3, $t3, $t0
	lw $t1, 0($t3)
	addi $t2, $t2, -1
	bgtz $t2, chase
	jr $ra
`

// alternateSeedSrc issues one static load whose base register toggles
// between two arrays every iteration, so a PC-indexed last-address table
// is wrong on every visit after the first — the canonical PC-indexed-
// prediction-defeating shape. The paired store exercises the store-side
// accounting under the same pattern.
const alternateSeedSrc = `
.data
a:	.space 64
b:	.space 64

.text
main:
	la $t0, a
	la $t1, b
	xor $t5, $t0, $t1
	li $t2, 64
flip:
	lw $t3, 0($t0)
	sw $t3, 4($t0)
	xor $t0, $t0, $t5
	addi $t2, $t2, -1
	bgtz $t2, flip
	jr $ra
`

// buildAsm assembles and links a hand-written seed program.
func buildAsm(t *testing.T, src string) *prog.Program {
	t.Helper()
	o, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("seed program does not assemble: %v", err)
	}
	p, err := prog.Link(o, prog.DefaultConfig())
	if err != nil {
		t.Fatalf("seed program does not link: %v", err)
	}
	return p
}

// TestAdversarialSeeds replays the committed predictor-defeating programs
// through the full oracle (all machines, event-stream checker, static
// oracle) and then pins that they really do defeat their target machine:
// accounting must stay consistent even when nearly every guess is wrong.
func TestAdversarialSeeds(t *testing.T) {
	seeds := []struct {
		name, src, victim string
	}{
		{"pointer-chase", chaseSeedSrc, "stride"},
		{"alternating-base", alternateSeedSrc, "pcax"},
	}
	machineByName := make(map[string]Machine)
	for _, m := range Machines() {
		machineByName[m.Name] = m
	}
	for _, s := range seeds {
		p := buildAsm(t, s.src)
		if err := Run(p, 1_000_000); err != nil {
			t.Fatalf("%s: oracle failed: %v", s.name, err)
		}
		m, ok := machineByName[s.victim]
		if !ok {
			t.Fatalf("machine %q missing from the oracle set", s.victim)
		}
		e := emu.New(p)
		e.MaxInsts = 1_000_000
		st, err := pipeline.RunObserved(m.Cfg, emuSource{e}, nil)
		if err != nil {
			t.Fatalf("%s on %s: %v", s.name, s.victim, err)
		}
		if st.LoadsSpeculated == 0 {
			t.Fatalf("%s: %s machine never speculated a load", s.name, s.victim)
		}
		if 2*st.LoadSpecFailed < st.LoadsSpeculated {
			t.Fatalf("%s should defeat %s: only %d/%d speculated loads failed",
				s.name, s.victim, st.LoadSpecFailed, st.LoadsSpeculated)
		}
	}
}

// TestMiniCOracle runs a few whole-stack differential checks directly, so
// the plain test suite exercises the program-level oracle.
func TestMiniCOracle(t *testing.T) {
	n := 4
	if testing.Short() {
		n = 1
	}
	for seed := int64(100); seed < int64(100+n); seed++ {
		src := RandomMiniC(rand.New(rand.NewSource(seed)))
		p := buildMiniC(t, src, minic.BaseOptions(), prog.DefaultConfig())
		if err := Run(p, 2_000_000); err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
	}
}
