package difftest

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/fac"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/prog"
	"repro/internal/staticfac"
)

// failureCorpus maps each handwritten failure-case program to the site
// opcode it stresses, the failure signal the static analysis must prove,
// and the machine on which the dynamic replays must actually occur.
var failureCorpus = []struct {
	file    string
	op      isa.Op
	signal  fac.Failure
	machine string
}{
	{"overflow.s", isa.LW, fac.FailOverflow, "fac32"},
	{"gencarry.s", isa.LW, fac.FailGenCarry, "fac32"},
	{"largenegconst.s", isa.LW, fac.FailLargeNegConst, "fac32"},
	{"negindexreg.s", isa.LWX, fac.FailNegIndexReg, "fac-regreg"},
}

func buildCorpus(t *testing.T, file string) *prog.Program {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "staticfac", file))
	if err != nil {
		t.Fatal(err)
	}
	o, err := asm.Assemble(string(src))
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	p, err := prog.Link(o, prog.DefaultConfig())
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	return p
}

func machineByName(t *testing.T, name string) Machine {
	t.Helper()
	for _, m := range Machines() {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("no machine %q", name)
	return Machine{}
}

// TestFailureCorpus drives each handwritten failure-case program through
// the full differential oracle (which includes the static soundness
// cross-check on every FAC machine) and then asserts the sharp ends
// directly: the static analysis proves the site failing with the intended
// signal under every FAC geometry, and a dynamic run on the designated
// machine really does replay every speculation at that site.
func TestFailureCorpus(t *testing.T) {
	for _, tc := range failureCorpus {
		t.Run(tc.file, func(t *testing.T) {
			p := buildCorpus(t, tc.file)
			if err := Run(p, 100_000); err != nil {
				t.Fatal(err)
			}

			m := machineByName(t, tc.machine)
			geom := m.Cfg.FACGeometry()
			a := staticfac.Analyze(p, geom)
			var site *staticfac.Site
			for i := range a.Sites {
				if a.Sites[i].Inst.Op == tc.op {
					if site != nil {
						t.Fatalf("multiple %v sites; corpus programs must have exactly one", tc.op)
					}
					site = &a.Sites[i]
				}
			}
			if site == nil {
				t.Fatalf("no %v site found", tc.op)
			}
			if site.Verdict != staticfac.VerdictFailing {
				t.Fatalf("site %#x verdict %v (can=%v), want proven_failing",
					site.PC, site.Verdict, site.CanFail)
			}
			if site.CanFail&tc.signal == 0 {
				t.Fatalf("site %#x CanFail %v missing expected signal %v",
					site.PC, site.CanFail, tc.signal)
			}

			e := emu.New(p)
			e.MaxInsts = 100_000
			sites := obs.NewSiteCollector()
			if _, err := pipeline.RunObserved(m.Cfg, emuSource{e}, sites); err != nil {
				t.Fatal(err)
			}
			d := sites.Sites[site.PC]
			if d == nil {
				t.Fatalf("machine %s never speculated site %#x", tc.machine, site.PC)
			}
			if d.Fails != d.Speculated || d.Fails == 0 {
				t.Fatalf("machine %s: site %#x replayed %d of %d speculations, want all (and >0)",
					tc.machine, site.PC, d.Fails, d.Speculated)
			}
			if d.FailMask&tc.signal == 0 {
				t.Fatalf("machine %s: site %#x dynamic failures %v missing %v",
					tc.machine, site.PC, d.FailMask, tc.signal)
			}
		})
	}
}
