// Package difftest is the cross-layer differential-testing harness: it
// checks the functional emulator, the timing pipeline, the fast-address-
// calculation predictor, and the binary/text toolchain layers against one
// another on the same program or instruction stream.
//
// Three oracle layers are exposed:
//
//   - CheckImage: every linked instruction must survive encode → decode
//     and disassemble → reassemble unchanged, so the binary and text
//     forms are faithful to the in-memory form.
//   - Reference: the functional emulator executed to completion is the
//     architectural reference — dynamic trace, program output, exit
//     code, and final register file.
//   - Run / RunTrace: the timing pipeline replays the reference stream
//     under several machine configurations while an attached obs.Sink
//     checker verifies the event stream against the run statistics:
//     verified predictions must equal architectural addresses, FAC
//     replays must equal verification failures, and the stall partition
//     must exactly cover the no-issue cycles.
//
// The fuzz targets in this package (FuzzFACPredict, FuzzEncodeDecode,
// FuzzAsmRoundtrip, FuzzEmuVsPipeline) drive these oracles from generated
// inputs; docs/TESTING.md describes how to run and extend them.
package difftest

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/emu"
	"repro/internal/fac"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/predict"
	"repro/internal/prog"
)

// Machine names one timing configuration the oracle replays a stream under.
type Machine struct {
	Name string
	Cfg  pipeline.Config
}

// Machines returns the oracle's machine set: the paper's baseline plus the
// speculative variants (FAC under 16- and 32-byte block geometries, with
// and without register+register and store speculation, with the tag
// adder), the AGI alternative organization, and the history-based
// prediction machines from internal/predict (pcax, stride, selective).
// Caches are shrunk from the paper's 16KB so short generated programs
// still exercise misses, evictions, MSHR merges, and store-buffer
// pressure; the history tables are shrunk likewise so generated programs
// see tag conflicts and evictions.
func Machines() []Machine {
	shrink := func(c pipeline.Config) pipeline.Config {
		c.ICache = cache.Config{Size: 1 << 10, BlockSize: 32, Assoc: 1, MissLatency: 6}
		c.DCache = cache.Config{Size: 1 << 10, BlockSize: 32, Assoc: 1, MissLatency: 6, MSHRs: 2}
		c.BTBEntries = 16
		c.StoreBufferEntries = 4
		return c
	}
	base := shrink(pipeline.DefaultConfig())

	fac32 := base
	fac32.FAC = true

	fac16 := fac32
	fac16.FACGeom = fac.Config{BlockBits: 4, SetBits: 10}

	regreg := fac32
	regreg.SpeculateRegReg = true

	nostore := fac32
	nostore.SpeculateStores = false

	tagadder := fac32
	tagadder.FACGeom = fac.Config{BlockBits: 5, SetBits: 10, TagAdder: true}

	agi := base
	agi.AGI = true
	agi.MispredictPenalty++

	ll1 := base
	ll1.LoadLatency = 1

	pcax := base
	pcax.Predictor = "pcax"
	pcax.PredictorEntries = 64

	stride := base
	stride.Predictor = "stride"
	stride.PredictorEntries = 64

	sel := base
	sel.Predictor = "selective"

	return []Machine{
		{"base", base},
		{"fac32", fac32},
		{"fac16", fac16},
		{"fac-regreg", regreg},
		{"fac-nostore", nostore},
		{"fac-tagadder", tagadder},
		{"agi", agi},
		{"loadlat1", ll1},
		{"pcax", pcax},
		{"stride", stride},
		{"selective", sel},
	}
}

// Ref is the functional reference outcome of one program execution.
type Ref struct {
	Trace  []emu.Trace
	Output string
	Exit   int32
	Insts  uint64
	R      [isa.NumRegs]uint32
	F      [isa.NumRegs]float64
	FCC    bool
}

// Reference executes the program to completion on the functional emulator
// and records everything the timing replays are compared against.
func Reference(p *prog.Program, maxInsts uint64) (*Ref, error) {
	e := emu.New(p)
	e.MaxInsts = maxInsts
	var trs []emu.Trace
	for !e.Halted {
		tr, err := e.Step()
		if err != nil {
			return nil, err
		}
		trs = append(trs, tr)
	}
	return &Ref{
		Trace:  trs,
		Output: e.Out.String(),
		Exit:   e.ExitCode,
		Insts:  e.InstCount,
		R:      e.R,
		F:      e.F,
		FCC:    e.FCC,
	}, nil
}

// CheckImage verifies the fidelity of a linked program's alternate
// representations: every instruction must encode at its final address,
// decode back to itself (binary fixpoint), and the full disassembly must
// reassemble to the identical instruction sequence (text fixpoint).
func CheckImage(p *prog.Program) error {
	var b strings.Builder
	b.WriteString(".text\n")
	for i, in := range p.Insts {
		pc := p.TextBase + uint32(i)*isa.InstBytes
		w, err := isa.Encode(in, pc)
		if err != nil {
			return fmt.Errorf("difftest: pc %#x: %v does not encode: %v", pc, in, err)
		}
		back, err := isa.Decode(w, pc)
		if err != nil {
			return fmt.Errorf("difftest: pc %#x: %#08x does not decode: %v", pc, w, err)
		}
		if back != in {
			return fmt.Errorf("difftest: pc %#x: decode(encode(%v)) = %v", pc, in, back)
		}
		if i < len(p.Words) && p.Words[i] != w {
			return fmt.Errorf("difftest: pc %#x: image word %#08x != re-encoding %#08x", pc, p.Words[i], w)
		}
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	o, err := asm.Assemble(b.String())
	if err != nil {
		return fmt.Errorf("difftest: disassembly does not reassemble: %v", err)
	}
	if len(o.Text) != len(p.Insts) {
		return fmt.Errorf("difftest: disassembly reassembled to %d insts, want %d", len(o.Text), len(p.Insts))
	}
	for i, in := range o.Text {
		if in != p.Insts[i] {
			pc := p.TextBase + uint32(i)*isa.InstBytes
			return fmt.Errorf("difftest: pc %#x: reassembled %q = %v, want %v",
				pc, p.Insts[i].String(), in, p.Insts[i])
		}
	}
	return nil
}

// emuSource feeds a live emulator to the pipeline, like a production run.
type emuSource struct{ e *emu.Emulator }

func (s emuSource) Next() (emu.Trace, bool, error) {
	if s.e.Halted {
		return emu.Trace{}, false, nil
	}
	tr, err := s.e.Step()
	if err != nil {
		return emu.Trace{}, false, err
	}
	return tr, true, nil
}

// Run executes the program on the functional emulator and replays it
// through the timing pipeline under every default machine, checking the
// image fixpoints, architectural state equivalence across machines, and
// the per-machine event-stream invariants. maxInsts bounds runaway
// programs (0 = no limit).
func Run(p *prog.Program, maxInsts uint64) error {
	return RunMachines(p, maxInsts, Machines())
}

// RunMachines is Run restricted to an explicit machine set.
func RunMachines(p *prog.Program, maxInsts uint64, machines []Machine) error {
	if err := CheckImage(p); err != nil {
		return err
	}
	ref, err := Reference(p, maxInsts)
	if err != nil {
		return fmt.Errorf("difftest: reference run: %v", err)
	}
	static := newStaticOracle(p)
	for _, m := range machines {
		e := emu.New(p)
		e.MaxInsts = maxInsts
		if m.Cfg.PredictorName() == "selective" && m.Cfg.StaticTable == nil {
			m.Cfg.StaticTable = predict.BuildStaticTable(p, m.Cfg.FACGeometry())
		}
		ck := newChecker(m)
		sink := obs.Sink(ck)
		var sites *obs.SiteCollector
		// The static oracle cross-checks per-site outcomes against the
		// operand-based FAC algebra; history machines (pcax, stride) guess
		// from past addresses, so only fac-shaped machines are checked.
		if name := m.Cfg.PredictorName(); name == "fac" || name == "selective" {
			sites = obs.NewSiteCollector()
			sink = obs.Tee{ck, sites}
		}
		st, err := pipeline.RunObserved(m.Cfg, emuSource{e}, sink)
		if err != nil {
			return fmt.Errorf("difftest: machine %s: %v", m.Name, err)
		}
		if err := compareArch(ref, e); err != nil {
			return fmt.Errorf("difftest: machine %s: %v", m.Name, err)
		}
		if err := ck.verify(st, refCounts(ref.Trace)); err != nil {
			return fmt.Errorf("difftest: machine %s: %v", m.Name, err)
		}
		if sites != nil {
			if err := static.check(m.Cfg.FACGeometry(), sites); err != nil {
				return fmt.Errorf("difftest: machine %s: %v", m.Name, err)
			}
		}
	}
	return nil
}

// RunTrace replays a raw dynamic instruction stream (no program or
// emulator behind it) through every machine, checking the event-stream
// invariants. It is the oracle behind generated-trace fuzzing.
func RunTrace(trs []emu.Trace, machines []Machine) error {
	counts := refCounts(trs)
	for _, m := range machines {
		// A selective machine with no program behind the trace runs with an
		// empty verdict table (pipeline defaults it): plain FAC behaviour.
		ck := newChecker(m)
		st, err := pipeline.RunObserved(m.Cfg, NewSliceSource(trs), ck)
		if err != nil {
			return fmt.Errorf("difftest: machine %s: %v", m.Name, err)
		}
		if err := ck.verify(st, counts); err != nil {
			return fmt.Errorf("difftest: machine %s: %v", m.Name, err)
		}
	}
	return nil
}

// streamCounts are instruction-class counts a replay must reproduce.
type streamCounts struct {
	insts, loads, stores, controls uint64
}

func refCounts(trs []emu.Trace) streamCounts {
	var c streamCounts
	c.insts = uint64(len(trs))
	for _, tr := range trs {
		switch {
		case tr.Inst.Op.IsLoad():
			c.loads++
		case tr.Inst.Op.IsStore():
			c.stores++
		}
		if tr.Inst.Op.IsControl() {
			c.controls++
		}
	}
	return c
}

// compareArch checks that a pipeline-driven emulator finished in exactly
// the reference architectural state: timing replay must never perturb
// architecture.
func compareArch(ref *Ref, e *emu.Emulator) error {
	if !e.Halted {
		return fmt.Errorf("emulator did not run to completion (%d/%d insts)", e.InstCount, ref.Insts)
	}
	if e.InstCount != ref.Insts {
		return fmt.Errorf("executed %d insts, reference executed %d", e.InstCount, ref.Insts)
	}
	if e.ExitCode != ref.Exit {
		return fmt.Errorf("exit code %d, reference %d", e.ExitCode, ref.Exit)
	}
	if got := e.Out.String(); got != ref.Output {
		return fmt.Errorf("output %q, reference %q", got, ref.Output)
	}
	if e.R != ref.R {
		return fmt.Errorf("final integer register file diverged: %v vs %v", e.R, ref.R)
	}
	for i := range e.F {
		if math.Float64bits(e.F[i]) != math.Float64bits(ref.F[i]) {
			return fmt.Errorf("final $f%d = %v, reference %v", i, e.F[i], ref.F[i])
		}
	}
	if e.FCC != ref.FCC {
		return fmt.Errorf("final FP condition flag %v, reference %v", e.FCC, ref.FCC)
	}
	return nil
}
