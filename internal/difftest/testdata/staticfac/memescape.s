# Address-taken escape, the negative case: main spills 5 to a stack slot,
# passes the slot's address to a callee that increments it through the
# pointer, then re-loads the slot.  Taking the address escapes the slot
# (AssumptionsNote 6), so the call-clobber rule must drop the slot fact
# across the jal and the re-load must NOT claim the stale value 5 -- the
# difftest value-soundness oracle would refute that claim dynamically
# (the loaded value is 6).  The re-load is classified from its address
# alone; its value is honestly unknown.
.data
	.balign 32
buf:	.space 64
.text
main:
	addi $sp, $sp, -16
	li $t0, 5
	sw $t0, 8($sp)
	addi $a0, $sp, 8
	jal bump
	lw $t1, 8($sp)
	la $t2, buf
	sll $t3, $t1, 2
	swx $t1, ($t2+$t3)
	addi $sp, $sp, 16
	li $v0, 10
	li $a0, 0
	syscall
bump:
	lw $t5, 0($a0)
	addi $t5, $t5, 1
	sw $t5, 0($a0)
	jr $ra
