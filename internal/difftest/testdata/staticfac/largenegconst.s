# Large negative constant: the offset -64 reaches more than one block below
# the base, which the prediction circuit rejects outright (and the zero low
# sum produces no borrow, failing the overflow check as well).  Statically
# proven_failing: largenegconst|overflow.
.data
	.balign 32
buf:	.space 128
.text
main:
	la $t0, buf
	addi $t0, $t0, 64
	li $t3, 4
loop:
	lw $t1, -64($t0)
	addi $t3, $t3, -1
	bgtz $t3, loop
	li $v0, 10
	li $a0, 0
	syscall
