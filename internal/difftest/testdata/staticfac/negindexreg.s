# Negative index register: register+register addressing with a sign-bit-set
# index arrives too late for negative-offset handling, so every speculation
# fails.  Only machines with SpeculateRegReg replay it dynamically, but the
# static verdict (proven_failing: negindexreg) holds regardless.
.data
	.balign 32
buf:	.space 64
.text
main:
	la $t0, buf
	addi $t0, $t0, 32
	li $t2, -8
	li $t3, 4
loop:
	lwx $t1, ($t0+$t2)
	addi $t3, $t3, -1
	bgtz $t3, loop
	li $v0, 10
	li $a0, 0
	syscall
