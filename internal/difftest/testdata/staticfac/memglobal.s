# Memory-resident global loop limit: the bound n lives in a data-section
# word, written once before the loop and re-loaded from memory on every
# iteration.  The register domains alone see an unknown loaded value and
# an unbounded index; the global-scalar memory domain joins the cell's
# image value (0) with the single exact store (8), so the re-load yields
# [0, 8], the guard bounds i to [0, 7], and the strided store stays inside
# buf's aligned block -- proven_predictable end to end from a memory fact.
.data
	.balign 32
n:	.word 0
	.balign 32
buf:	.space 64
.text
main:
	li $t0, 8
	la $t1, n
	sw $t0, 0($t1)
	li $t2, 0
	la $t3, buf
loop:
	sll $t4, $t2, 2
	swx $t2, ($t3+$t4)
	addi $t2, $t2, 1
	la $t5, n
	lw $t6, 0($t5)
	blt $t2, $t6, loop
	li $v0, 10
	li $a0, 0
	syscall
