# Set-index carry: base and offset both have bit 5 set with zero low sums,
# so the carry-free OR differs from true addition inside the index field on
# every access.  Statically proven_failing: gencarry (the tag adder does not
# help -- the conflict is in the index, not the tag).
.data
	.balign 64
buf:	.space 128
.text
main:
	la $t0, buf
	addi $t0, $t0, 32
	li $t3, 4
loop:
	lw $t1, 32($t0)
	addi $t3, $t3, -1
	bgtz $t3, loop
	li $v0, 10
	li $a0, 0
	syscall
