# Block-offset overflow: the base register ends 28 (mod 32), so adding the
# constant offset 8 carries out of the block-offset field on every access
# (16- and 32-byte blocks alike).  Statically proven_failing: overflow.
.data
	.balign 32
buf:	.space 64
.text
main:
	la $t0, buf
	addi $t0, $t0, 28
	li $t3, 4
loop:
	lw $t1, 8($t0)
	addi $t3, $t3, -1
	bgtz $t3, loop
	li $v0, 10
	li $a0, 0
	syscall
