# Spilled-local loop limit: the bound is stored to a fixed $sp-relative
# slot before the loop and re-loaded from the stack every iteration (a
# register-pressure spill).  The flow-sensitive stack-slot domain gives
# the re-load the exact stored value (8), which bounds the index and
# proves the strided store predictable; without slot tracking the loaded
# bound is unknown and so is every access the loop performs.
.data
	.balign 32
buf:	.space 64
.text
main:
	addi $sp, $sp, -16
	li $t0, 8
	sw $t0, 8($sp)
	li $t1, 0
	la $t2, buf
loop:
	sll $t3, $t1, 2
	swx $t1, ($t2+$t3)
	addi $t1, $t1, 1
	lw $t4, 8($sp)
	blt $t1, $t4, loop
	addi $sp, $sp, 16
	li $v0, 10
	li $a0, 0
	syscall
