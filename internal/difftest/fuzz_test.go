package difftest

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/fac"
	"repro/internal/isa"
	"repro/internal/minic"
	"repro/internal/prog"
)

// facGeoFrom maps arbitrary fuzz bytes onto a valid predictor geometry.
func facGeoFrom(bbRaw, sbRaw uint32, tagAdder bool) fac.Config {
	bb := uint(2 + bbRaw%11)           // 2..12
	sb := bb + 1 + uint(sbRaw)%(28-bb) // bb+1..28
	return fac.Config{BlockBits: bb, SetBits: sb, TagAdder: tagAdder}
}

// FuzzFACPredict checks the predictor's contract for arbitrary operands
// under arbitrary geometries:
//
//   - OK ⟺ no failure signal, and only the four defined signals appear.
//   - OK ⟹ Predicted == base+ofs (mod 2^32), the paper's soundness
//     invariant.
//   - Unless the conservative negative-index-register path is taken, the
//     verification circuit is *exact*: it fails iff the prediction is
//     wrong (Section 3's signals are necessary as well as sufficient).
//   - The block-offset field is always architecturally correct (it comes
//     from a full adder).
//   - The tag-adder variant agrees with the plain geometry on the
//     index+offset fields, and its failure signals are a subset (the tag
//     adder can only remove tag-carry failures).
func FuzzFACPredict(f *testing.F) {
	f.Add(uint32(0x7fff5b84), uint32(364), false, uint32(5), uint32(14), false)
	f.Add(uint32(0x10003fe0), uint32(0x20), false, uint32(5), uint32(14), false)
	f.Add(uint32(0x10000000), uint32(0xFFFFFFFC), false, uint32(5), uint32(14), false) // ofs = -4
	f.Add(uint32(0x10000000), uint32(0xFFFF8000), true, uint32(4), uint32(12), true)   // negative index reg
	f.Add(uint32(0xFFFFFFFF), uint32(0xFFFFFFFF), false, uint32(2), uint32(3), true)
	f.Fuzz(func(t *testing.T, base, ofs uint32, isReg bool, bbRaw, sbRaw uint32, tagAdder bool) {
		geo := facGeoFrom(bbRaw, sbRaw, tagAdder)
		if err := geo.Validate(); err != nil {
			t.Fatalf("derived geometry %+v invalid: %v", geo, err)
		}
		res := geo.Predict(base, ofs, isReg)
		actual := base + ofs

		if res.OK != (res.Failure == 0) {
			t.Fatalf("%+v Predict(%#x,%#x,%v): OK=%v but Failure=%v", geo, base, ofs, isReg, res.OK, res.Failure)
		}
		allSignals := fac.FailOverflow | fac.FailGenCarry | fac.FailLargeNegConst | fac.FailNegIndexReg
		if res.Failure&^allSignals != 0 {
			t.Fatalf("%+v Predict(%#x,%#x,%v): undefined failure bits %#x", geo, base, ofs, isReg, uint8(res.Failure))
		}
		if res.OK && res.Predicted != actual {
			t.Fatalf("%+v Predict(%#x,%#x,%v): verified but predicted %#x != actual %#x",
				geo, base, ofs, isReg, res.Predicted, actual)
		}
		negReg := isReg && ofs&0x80000000 != 0
		if negReg != (res.Failure&fac.FailNegIndexReg != 0) {
			t.Fatalf("%+v Predict(%#x,%#x,%v): FailNegIndexReg=%v, want %v",
				geo, base, ofs, isReg, !negReg, negReg)
		}
		if !negReg && res.OK != (res.Predicted == actual) {
			t.Fatalf("%+v Predict(%#x,%#x,%v): verification is inexact: OK=%v, predicted %#x, actual %#x",
				geo, base, ofs, isReg, res.OK, res.Predicted, actual)
		}
		if got, want := geo.BlockOffset(res.Predicted), geo.BlockOffset(actual); got != want {
			t.Fatalf("%+v Predict(%#x,%#x,%v): block offset %#x != architectural %#x",
				geo, base, ofs, isReg, got, want)
		}

		// Tag-adder agreement on the shared fields.
		plainGeo, tagGeo := geo, geo
		plainGeo.TagAdder, tagGeo.TagAdder = false, true
		plain := plainGeo.Predict(base, ofs, isReg)
		tagged := tagGeo.Predict(base, ofs, isReg)
		sm := uint32(1)<<geo.SetBits - 1
		if plain.Predicted&sm != tagged.Predicted&sm {
			t.Fatalf("%+v Predict(%#x,%#x,%v): index+offset fields disagree across tag-adder variants: %#x vs %#x",
				geo, base, ofs, isReg, plain.Predicted&sm, tagged.Predicted&sm)
		}
		if tagged.Failure&^plain.Failure != 0 {
			t.Fatalf("%+v Predict(%#x,%#x,%v): tag adder raised new signals: %v not in %v",
				geo, base, ofs, isReg, tagged.Failure, plain.Failure)
		}
		if plain.Failure&^tagged.Failure&^fac.FailGenCarry != 0 {
			t.Fatalf("%+v Predict(%#x,%#x,%v): tag adder removed non-tag-carry signals: plain %v, tagged %v",
				geo, base, ofs, isReg, plain.Failure, tagged.Failure)
		}
	})
}

// FuzzEncodeDecode checks the binary fixpoint: any word that decodes must
// re-encode, and the re-encoded word must decode to the identical
// instruction (one canonicalization step at most).
func FuzzEncodeDecode(f *testing.F) {
	pcs := []uint32{0x00400000, 0x00400abc}
	seeds := []isa.Inst{
		{Op: isa.ADD, Rd: 8, Rs: 9, Rt: 10},
		{Op: isa.ADDI, Rd: 8, Rs: 28, Imm: -32768},
		{Op: isa.ANDI, Rd: 8, Rs: 9, Imm: 0xFFFF},
		{Op: isa.LW, Rd: 8, Rs: 29, Imm: 4},
		{Op: isa.SWX, Rd: 8, Rs: 9, Rt: 10},
		{Op: isa.LWPI, Rd: 8, Rs: 9, Imm: -4},
		{Op: isa.BEQ, Rs: 8, Rt: 9, Imm: -8},
		{Op: isa.J, Imm: 0x00400008},
		{Op: isa.SYSCALL},
		{Op: isa.LUI, Rd: 28, Imm: 0x1000},
		{Op: isa.SFD, Rt: 2, Rs: 29, Imm: 8},
	}
	for _, in := range seeds {
		w, err := isa.Encode(in, pcs[0])
		if err != nil {
			f.Fatalf("seed %v does not encode: %v", in, err)
		}
		f.Add(w, uint32(0))
	}
	f.Add(uint32(0), uint32(0))
	f.Add(^uint32(0), uint32(1))
	f.Fuzz(func(t *testing.T, word, pcSel uint32) {
		pc := pcs[pcSel%uint32(len(pcs))]
		in, err := isa.Decode(word, pc)
		if err != nil {
			return // not every word is an instruction
		}
		w2, err := isa.Encode(in, pc)
		if err != nil {
			t.Fatalf("decode(%#08x) = %v, which does not re-encode: %v", word, in, err)
		}
		in2, err := isa.Decode(w2, pc)
		if err != nil {
			t.Fatalf("re-encoding %#08x of %v does not decode: %v", w2, in, err)
		}
		if in2 != in {
			t.Fatalf("decode/encode is not a fixpoint: %#08x -> %v -> %#08x -> %v", word, in, w2, in2)
		}
	})
}

// FuzzAsmRoundtrip checks the text fixpoint: any source the assembler
// accepts must disassemble (instruction by instruction) into text the
// assembler re-accepts, producing the identical instruction sequence.
// Relocated immediates are zero placeholders in both generations, so the
// comparison is exact even for symbol-bearing source.
func FuzzAsmRoundtrip(f *testing.F) {
	f.Add("main:\n\tli $t0, 42\n\tlw $t1, 4($t0)\n\tjr $ra\n")
	f.Add(".data\nx: .word 7\n.text\nmain:\n\tla $t0, x\n\tlw $t1, 0($t0)\n\tsw $t1, 8($sp)\n\tjr $ra\n")
	f.Add("main:\n\tlwx $t2, ($t0+$t1)\n\tswx $t2, ($t1+$t0)\n\tlw $t3, ($t0)+4\n\tsw $t3, ($t0)+-4\n")
	f.Add("loop:\n\taddi $t0, $t0, -1\n\tbgtz $t0, loop\n\tbeq $zero, $zero, 8\n\tnop\n\tsyscall\n")
	f.Add("main:\n\tlfd $f2, 8($sp)\n\tfadd $f4, $f2, $f2\n\tsfd $f4, ($sp)+8\n\tmtc1 $f1, $t0\n\tmfc1 $t1, $f1\n")
	f.Add(".sdata\ns: .asciiz \"hi\"\n.text\nmain:\n\tlui $at, %hi(s)\n\taddi $a0, $at, %lo(s)\n\tjal 0x400000\n")
	// Predictor-adversarial seed programs (see TestAdversarialSeeds): a
	// pointer chase that defeats stride prediction and an alternating-base
	// loop that defeats PC-indexed last-address prediction.
	f.Add(chaseSeedSrc)
	f.Add(alternateSeedSrc)
	// Memory-domain seed programs (see TestMemoryDomainCorpus): a
	// memory-resident global loop limit, a spilled-local limit, and an
	// address-taken escape — mutations explore the store/load/escape
	// shapes the staticfac memory domain reasons about.
	for _, name := range []string{"memglobal.s", "memstack.s", "memescape.s"} {
		if b, err := os.ReadFile(filepath.Join("testdata", "staticfac", name)); err == nil {
			f.Add(string(b))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8<<10 {
			return // bound assembly time, not coverage
		}
		o, err := asm.Assemble(src)
		if err != nil {
			return // rejected source is fine; we check accepted source
		}
		var b []byte
		b = append(b, ".text\n"...)
		for _, in := range o.Text {
			b = append(b, in.String()...)
			b = append(b, '\n')
		}
		o2, err := asm.Assemble(string(b))
		if err != nil {
			t.Fatalf("disassembly of accepted source does not reassemble: %v\ndisassembly:\n%s", err, b)
		}
		if len(o2.Text) != len(o.Text) {
			t.Fatalf("reassembly produced %d insts, want %d\ndisassembly:\n%s", len(o2.Text), len(o.Text), b)
		}
		for i := range o.Text {
			if o2.Text[i] != o.Text[i] {
				t.Fatalf("inst %d: reassembled %q to %v, want %v", i, o.Text[i].String(), o2.Text[i], o.Text[i])
			}
		}
	})
}

// buildMiniC compiles, assembles, and links one generated program under
// one toolchain.
func buildMiniC(t *testing.T, src string, opts minic.Options, cfg prog.Config) *prog.Program {
	t.Helper()
	asmText, err := minic.Compile(src, opts)
	if err != nil {
		t.Fatalf("generated program does not compile: %v\nsource:\n%s", err, src)
	}
	o, err := asm.Assemble(asmText)
	if err != nil {
		t.Fatalf("compiler output does not assemble: %v\nsource:\n%s", err, src)
	}
	p, err := prog.Link(o, cfg)
	if err != nil {
		t.Fatalf("object does not link: %v\nsource:\n%s", err, src)
	}
	return p
}

// FuzzEmuVsPipeline is the whole-stack oracle: a generated MiniC program
// goes through both toolchains (baseline and the paper's FAC-aligned
// software support), executes on the functional emulator, and replays
// through the timing pipeline under every machine in Machines(), with the
// event-stream checker attached.
func FuzzEmuVsPipeline(f *testing.F) {
	for s := int64(1); s <= 8; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		src := RandomMiniC(rand.New(rand.NewSource(seed)))
		toolchains := []struct {
			name string
			opts minic.Options
			cfg  prog.Config
		}{
			{"base", minic.BaseOptions(), prog.DefaultConfig()},
			{"fac", minic.FACOptions(), func() prog.Config { c := prog.DefaultConfig(); c.AlignGP = true; return c }()},
		}
		for _, tc := range toolchains {
			p := buildMiniC(t, src, tc.opts, tc.cfg)
			if err := Run(p, 2_000_000); err != nil {
				t.Fatalf("toolchain %s: %v\nsource:\n%s", tc.name, err, src)
			}
		}
	})
}
