package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/emu"
	"repro/internal/isa"
)

// SliceSource replays a pre-recorded dynamic instruction stream into the
// pipeline.
type SliceSource struct {
	trs []emu.Trace
	i   int
}

// NewSliceSource returns a pipeline.Source over trs.
func NewSliceSource(trs []emu.Trace) *SliceSource { return &SliceSource{trs: trs} }

// Next implements pipeline.Source.
func (s *SliceSource) Next() (emu.Trace, bool, error) {
	if s.i >= len(s.trs) {
		return emu.Trace{}, false, nil
	}
	tr := s.trs[s.i]
	s.i++
	return tr, true, nil
}

// RandomTrace generates a well-formed dynamic instruction stream of n
// instructions: PCs chain through taken branches and jumps, memory
// operands satisfy EffAddr == Base+Offset under every addressing mode
// (constant, register+register, and post-increment), and base/index
// values mix the patterns that drive every predictor outcome — aligned
// and unaligned bases, small and block-crossing offsets, negative index
// registers. It replaces the pipeline package's earlier ad-hoc generator,
// which never produced taken branches, post-increment, or reg+reg
// traffic.
func RandomTrace(r *rand.Rand, n int) []emu.Trace {
	g := &traceGen{r: r, pc: 0x00400000}
	for i := range g.reg {
		g.reg[i] = g.value()
	}
	g.reg[isa.Zero] = 0
	for len(g.trs) < n {
		g.step()
	}
	return g.trs[:n]
}

type traceGen struct {
	r   *rand.Rand
	pc  uint32
	reg [isa.NumRegs]uint32
	trs []emu.Trace
}

// value picks register contents from the populations that matter to the
// predictor: data- and stack-segment pointers, small integers, values
// hugging a block boundary, and sign-bit-set values (negative index
// registers).
func (g *traceGen) value() uint32 {
	switch g.r.Intn(6) {
	case 0:
		return 0x10000000 + uint32(g.r.Intn(1<<13))
	case 1:
		return 0x7FFF0000 - uint32(g.r.Intn(1<<12))
	case 2:
		return uint32(g.r.Intn(256))
	case 3:
		return uint32(g.r.Uint64())
	case 4:
		return (uint32(g.r.Uint64()) &^ 31) | uint32(g.r.Intn(8)+24) // near block end
	default:
		return 0x80000000 | uint32(g.r.Uint64())>>1&0xFFFF // negative, moderate magnitude
	}
}

// gpr picks a general working register ($t0-$t7, $s0-$s7).
func (g *traceGen) gpr() isa.Reg { return isa.Reg(8 + g.r.Intn(16)) }

// fpr picks an FP working register.
func (g *traceGen) fpr() isa.Reg { return isa.Reg(g.r.Intn(16)) }

func (g *traceGen) emit(tr emu.Trace) {
	g.trs = append(g.trs, tr)
	g.pc = tr.NextPC
}

func (g *traceGen) flat(in isa.Inst) {
	g.emit(emu.Trace{PC: g.pc, Inst: in, NextPC: g.pc + isa.InstBytes})
}

func (g *traceGen) step() {
	r := g.r
	switch p := r.Intn(100); {
	case p < 25: // single-cycle integer ALU
		rd, rs, rt := g.gpr(), g.gpr(), g.gpr()
		switch r.Intn(4) {
		case 0:
			g.flat(isa.Inst{Op: isa.ADD, Rd: rd, Rs: rs, Rt: rt})
			g.reg[rd] = g.reg[rs] + g.reg[rt]
		case 1:
			imm := int32(int16(r.Uint32()))
			g.flat(isa.Inst{Op: isa.ADDI, Rd: rd, Rs: rs, Imm: imm})
			g.reg[rd] = g.reg[rs] + uint32(imm)
		case 2:
			g.flat(isa.Inst{Op: isa.XOR, Rd: rd, Rs: rs, Rt: rt})
			g.reg[rd] = g.reg[rs] ^ g.reg[rt]
		case 3:
			g.flat(isa.Inst{Op: isa.LUI, Rd: rd, Imm: int32(r.Intn(0x10000))})
			g.reg[rd] = uint32(r.Intn(0x10000)) << 16
		}
	case p < 31: // long-latency integer
		rd, rs, rt := g.gpr(), g.gpr(), g.gpr()
		op := isa.MUL
		if r.Intn(3) == 0 {
			op = isa.DIV
		}
		g.flat(isa.Inst{Op: op, Rd: rd, Rs: rs, Rt: rt})
		g.reg[rd] = g.value()
	case p < 40: // FP arithmetic
		ops := []isa.Op{isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV}
		g.flat(isa.Inst{Op: ops[r.Intn(len(ops))], Rd: g.fpr(), Rs: g.fpr(), Rt: g.fpr()})
	case p < 72: // memory traffic, all addressing modes
		g.memStep()
	case p < 90: // conditional branches, ~half taken
		g.branchStep()
	default: // jumps
		g.jumpStep()
	}
}

func (g *traceGen) memStep() {
	r := g.r
	rs := g.gpr()
	base := g.reg[rs]
	tr := emu.Trace{PC: g.pc, NextPC: g.pc + isa.InstBytes, Base: base}
	switch r.Intn(8) {
	case 0, 1: // constant-offset load
		ops := []isa.Op{isa.LW, isa.LB, isa.LBU, isa.LH, isa.LHU}
		op := ops[r.Intn(len(ops))]
		imm := g.constOffset()
		tr.Inst = isa.Inst{Op: op, Rd: g.gpr(), Rs: rs, Imm: imm}
		tr.Offset = uint32(imm)
		g.reg[tr.Inst.Rd] = g.value()
	case 2: // constant-offset store
		ops := []isa.Op{isa.SW, isa.SB, isa.SH}
		op := ops[r.Intn(len(ops))]
		imm := g.constOffset()
		tr.Inst = isa.Inst{Op: op, Rt: g.gpr(), Rs: rs, Imm: imm}
		tr.Offset = uint32(imm)
	case 3: // register+register load
		rt := g.gpr()
		tr.Inst = isa.Inst{Op: isa.LWX, Rd: g.gpr(), Rs: rs, Rt: rt}
		tr.Offset, tr.IsRegOffset = g.reg[rt], true
		g.reg[tr.Inst.Rd] = g.value()
	case 4: // register+register store
		rt := g.gpr()
		tr.Inst = isa.Inst{Op: isa.SWX, Rd: g.gpr(), Rs: rs, Rt: rt}
		tr.Offset, tr.IsRegOffset = g.reg[rt], true
	case 5: // post-increment/decrement load; access uses the base directly
		inc := int32((r.Intn(8) - 4) * 4)
		tr.Inst = isa.Inst{Op: isa.LWPI, Rd: g.gpr(), Rs: rs, Imm: inc}
		g.reg[rs] = base + uint32(inc)
		g.reg[tr.Inst.Rd] = g.value()
	case 6: // post-increment/decrement store
		inc := int32((r.Intn(8) - 4) * 8)
		tr.Inst = isa.Inst{Op: isa.SWPI, Rt: g.gpr(), Rs: rs, Imm: inc}
		g.reg[rs] = base + uint32(inc)
	case 7: // FP loads and stores
		switch r.Intn(3) {
		case 0:
			imm := g.constOffset()
			tr.Inst = isa.Inst{Op: isa.LFD, Rd: g.fpr(), Rs: rs, Imm: imm}
			tr.Offset = uint32(imm)
		case 1:
			imm := g.constOffset()
			tr.Inst = isa.Inst{Op: isa.SFD, Rt: g.fpr(), Rs: rs, Imm: imm}
			tr.Offset = uint32(imm)
		default:
			rt := g.gpr()
			tr.Inst = isa.Inst{Op: isa.LFDX, Rd: g.fpr(), Rs: rs, Rt: rt}
			tr.Offset, tr.IsRegOffset = g.reg[rt], true
		}
	}
	tr.EffAddr = tr.Base + tr.Offset
	if tr.Inst.Op.Mode() == isa.AMPost {
		tr.EffAddr = tr.Base // access precedes the increment
	}
	g.emit(tr)
}

// constOffset mixes the small frame/global offsets real code produces with
// boundary-crossing and large-magnitude ones.
func (g *traceGen) constOffset() int32 {
	switch g.r.Intn(4) {
	case 0:
		return int32(g.r.Intn(64) * 4)
	case 1:
		return int32(g.r.Intn(1024) - 512)
	case 2:
		return int32(int16(g.r.Uint32())) // full immediate range
	default:
		return int32(-(g.r.Intn(64) * 4))
	}
}

func (g *traceGen) branchStep() {
	r := g.r
	ops := []isa.Op{isa.BEQ, isa.BNE, isa.BLEZ, isa.BGTZ, isa.BLTZ, isa.BGEZ}
	op := ops[r.Intn(len(ops))]
	in := isa.Inst{Op: op, Rs: g.gpr()}
	if op == isa.BEQ || op == isa.BNE {
		in.Rt = g.gpr()
	}
	tr := emu.Trace{PC: g.pc, NextPC: g.pc + isa.InstBytes}
	if r.Intn(2) == 0 {
		// Taken: forward or backward displacement, never zero.
		d := int32((r.Intn(32) - 15) * 4)
		if d == 0 {
			d = 64
		}
		in.Imm = d
		tr.Taken = true
		tr.NextPC = g.pc + isa.InstBytes + uint32(d)
	} else {
		in.Imm = int32((r.Intn(64) + 1) * 4)
	}
	tr.Inst = in
	g.emit(tr)
}

func (g *traceGen) jumpStep() {
	r := g.r
	tr := emu.Trace{PC: g.pc}
	switch r.Intn(3) {
	case 0:
		target := (g.pc+isa.InstBytes)&0xF0000000 | uint32(r.Intn(1<<16))<<2
		tr.Inst = isa.Inst{Op: isa.J, Imm: int32(target)}
		tr.NextPC = target
	case 1:
		target := (g.pc+isa.InstBytes)&0xF0000000 | uint32(r.Intn(1<<16))<<2
		tr.Inst = isa.Inst{Op: isa.JAL, Imm: int32(target)}
		tr.NextPC = target
		g.reg[isa.RA] = g.pc + isa.InstBytes
	default:
		rs := g.gpr()
		tr.Inst = isa.Inst{Op: isa.JR, Rs: rs}
		tr.NextPC = g.reg[rs] &^ 3
	}
	tr.Taken = true
	g.emit(tr)
}

// RandomMiniC generates a small, always-terminating MiniC program: global
// array traffic, nested counted loops, branches, and integer arithmetic
// with guarded division. The programs are semantically unconstrained —
// the differential oracle compares the emulator against itself under
// timing replay, not against a shadow evaluation.
func RandomMiniC(r *rand.Rand) string {
	g := &minicGen{r: r}
	var b strings.Builder
	b.WriteString("int g[32];\n\nint main() {\n")
	b.WriteString("\tint a; int b; int c; int s; int i; int j;\n")
	fmt.Fprintf(&b, "\ta = %d; b = %d; c = %d; s = 0; j = 0;\n", r.Intn(201)-100, r.Intn(201)-100, r.Intn(65536)-32768)
	fmt.Fprintf(&b, "\tfor (i = 0; i < 32; i++) { g[i] = i * %d + %d; }\n", r.Intn(9)-4, r.Intn(101)-50)
	for n := 3 + r.Intn(6); n > 0; n-- {
		g.stmt(&b, 1, "i")
	}
	b.WriteString("\ts = 0;\n\tfor (i = 0; i < 32; i++) { s = s * 31 + g[i]; }\n")
	b.WriteString("\tprint_int(s); print_char(10);\n")
	b.WriteString("\tprint_int(a ^ b ^ c); print_char(10);\n")
	b.WriteString("\treturn (s ^ a) & 255;\n}\n")
	return b.String()
}

type minicGen struct {
	r *rand.Rand
}

var minicVars = []string{"a", "b", "c", "s"}

func (g *minicGen) stmt(b *strings.Builder, depth int, loopVar string) {
	r := g.r
	ind := strings.Repeat("\t", depth)
	switch p := r.Intn(10); {
	case p < 4 || depth >= 3:
		lhs := minicVars[r.Intn(len(minicVars))]
		ops := []string{"=", "+=", "-=", "*=", "^=", "|=", "&="}
		fmt.Fprintf(b, "%s%s %s %s;\n", ind, lhs, ops[r.Intn(len(ops))], g.expr(0, loopVar))
	case p < 6:
		fmt.Fprintf(b, "%sg[%s & 31] = %s;\n", ind, g.expr(1, loopVar), g.expr(0, loopVar))
	case p < 8:
		fmt.Fprintf(b, "%sif (%s) {\n", ind, g.expr(0, loopVar))
		g.stmt(b, depth+1, loopVar)
		if r.Intn(2) == 0 {
			fmt.Fprintf(b, "%s} else {\n", ind)
			g.stmt(b, depth+1, loopVar)
		}
		fmt.Fprintf(b, "%s}\n", ind)
	case p < 9 && loopVar == "i":
		// One nesting level: loops at this level iterate i; their bodies
		// get j as the free variable and may not open another loop on i.
		fmt.Fprintf(b, "%sfor (i = 0; i < %d; i++) {\n", ind, 2+r.Intn(24))
		g.stmt(b, depth+1, "j")
		fmt.Fprintf(b, "%s}\n", ind)
	default:
		fmt.Fprintf(b, "%sdo {\n", ind)
		g.stmt(b, depth+1, loopVar)
		fmt.Fprintf(b, "%s} while (0);\n", ind)
	}
}

func (g *minicGen) expr(depth int, loopVar string) string {
	r := g.r
	if depth >= 2 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return minicVars[r.Intn(len(minicVars))]
		case 1:
			consts := []int{0, 1, -1, 2, 31, 255, 32767, -32768, 65535, -4096}
			return fmt.Sprint(consts[r.Intn(len(consts))])
		case 2:
			// Index with a simple leaf: deep subscripts exhaust the
			// compiler's (documented) temporary budget.
			if r.Intn(2) == 0 {
				return fmt.Sprintf("g[%s & 31]", loopVar)
			}
			return fmt.Sprintf("g[%s & 31]", minicVars[r.Intn(len(minicVars))])
		default:
			return loopVar
		}
	}
	l, rhs := g.expr(depth+1, loopVar), g.expr(depth+1, loopVar)
	switch r.Intn(12) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, rhs)
	case 1:
		return fmt.Sprintf("(%s - %s)", l, rhs)
	case 2:
		return fmt.Sprintf("(%s * %s)", l, rhs)
	case 3:
		return fmt.Sprintf("(%s / (%s | 1))", l, rhs) // |1 keeps the divisor nonzero
	case 4:
		return fmt.Sprintf("(%s %% (%s | 1))", l, rhs)
	case 5:
		return fmt.Sprintf("(%s & %s)", l, rhs)
	case 6:
		return fmt.Sprintf("(%s | %s)", l, rhs)
	case 7:
		return fmt.Sprintf("(%s ^ %s)", l, rhs)
	case 8:
		return fmt.Sprintf("(%s << %d)", l, r.Intn(8))
	case 9:
		return fmt.Sprintf("(%s >> %d)", l, r.Intn(8))
	case 10:
		return fmt.Sprintf("(%s < %s)", l, rhs)
	default:
		return fmt.Sprintf("(%s == %s ? %s : %s)", l, rhs, g.expr(depth+1, loopVar), g.expr(depth+1, loopVar))
	}
}
