package difftest

import (
	"fmt"

	"repro/internal/fac"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/predict"
)

// checker is an obs.Sink that cross-validates the pipeline's event stream
// against its run statistics and the FAC predictor's contract. It records
// the first violation; verify reports it (or any end-of-run mismatch).
//
// Invariants checked:
//
//   - A KindFACPredict with no failure signal is a *verified* prediction:
//     the instruction's KindIssue event must carry the identical address
//     (the predictor's OK ⟹ Predicted == base+ofs contract, observed
//     through the simulator rather than asserted in unit tests).
//   - A failed prediction must be followed by exactly one KindReplay in
//     the next cycle carrying the architectural address, and a verified
//     one by none, so total replays equal total verification failures.
//   - Every simulated cycle is either an issue cycle or carries exactly
//     one KindStall event, and the per-cause stall counts reproduce
//     Stats.StallCycles (the stall partition sums to no-issue cycles).
//   - Speculation and class counters in Stats equal the event counts.
type checker struct {
	name string
	cfg  pipeline.Config
	// sigMask covers the failure-signal slots the active prediction
	// machine may charge (per-machine accounting: an event raising a bit
	// outside the machine's own signal set is a bug).
	sigMask fac.Failure

	err error

	issueCycles map[uint64]bool
	stallCycles map[uint64]bool
	stallCounts [obs.NumStallCauses]uint64

	loadSpec, storeSpec     uint64
	loadFail, storeFail     uint64
	loadNoPred, storeNoPred uint64
	replays                 uint64
	loadKinds, storeKinds   [fac.NumFailureSignals]uint64

	// Pending predict → issue pairing (cleared by the access's own issue
	// event, which always follows within the same issue scan).
	havePred   bool
	predStore  bool
	predFail   fac.Failure
	predAddr   uint32
	predCycle  uint64
	haveReplay bool
	replayAddr uint32
}

func newChecker(m Machine) *checker {
	c := &checker{
		name:        m.Name,
		cfg:         m.Cfg,
		issueCycles: make(map[uint64]bool),
		stallCycles: make(map[uint64]bool),
	}
	if names := predict.SignalNamesFor(m.Cfg.PredictorName()); names != nil {
		c.sigMask = fac.Failure(1)<<len(names) - 1
	}
	return c
}

func (c *checker) fail(format string, args ...interface{}) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *checker) Event(e obs.Event) {
	switch e.Kind {
	case obs.KindFACPredict:
		if e.Flags&obs.FlagNoPredict != 0 {
			// A declined prediction: the access proceeds down the ordinary
			// non-speculative path, so it enters no predict→issue pairing.
			if e.Fail != 0 || e.Addr != 0 {
				c.fail("cycle %d pc %#x: no-predict event carries fail %v / addr %#x", e.Cycle, e.PC, e.Fail, e.Addr)
				return
			}
			if e.Flags&obs.FlagStore != 0 {
				c.storeNoPred++
			} else {
				c.loadNoPred++
			}
			return
		}
		if c.havePred {
			c.fail("cycle %d pc %#x: FAC predict while predict at cycle %d pc unresolved", e.Cycle, e.PC, c.predCycle)
			return
		}
		if e.Fail&^c.sigMask != 0 {
			c.fail("cycle %d pc %#x: failure %v outside the machine's signal slots (mask %#x)", e.Cycle, e.PC, e.Fail, c.sigMask)
			return
		}
		c.havePred = true
		c.predStore = e.Flags&obs.FlagStore != 0
		c.predFail = e.Fail
		c.predAddr = e.Addr
		c.predCycle = e.Cycle
		c.haveReplay = false
		if c.predStore {
			c.storeSpec++
			if e.Fail != 0 {
				c.storeFail++
				e.Fail.CountInto(&c.storeKinds)
			}
		} else {
			c.loadSpec++
			if e.Fail != 0 {
				c.loadFail++
				e.Fail.CountInto(&c.loadKinds)
			}
		}

	case obs.KindReplay:
		c.replays++
		if !c.havePred {
			c.fail("cycle %d pc %#x: replay without a pending prediction", e.Cycle, e.PC)
			return
		}
		if c.predFail == 0 {
			c.fail("cycle %d pc %#x: replay of a *verified* prediction (addr %#x)", e.Cycle, e.PC, c.predAddr)
			return
		}
		if c.haveReplay {
			c.fail("cycle %d pc %#x: second replay for one mispredict", e.Cycle, e.PC)
			return
		}
		if e.Cycle != c.predCycle+1 {
			c.fail("replay at cycle %d for a predict at cycle %d (want predict+1)", e.Cycle, c.predCycle)
			return
		}
		if isStore := e.Flags&obs.FlagStore != 0; isStore != c.predStore {
			c.fail("cycle %d: replay store-flag %v != predict store-flag %v", e.Cycle, isStore, c.predStore)
			return
		}
		c.haveReplay = true
		c.replayAddr = e.Addr

	case obs.KindIssue:
		c.issueCycles[e.Cycle] = true
		if !c.havePred {
			return
		}
		// This issue event is the speculated access itself; its Addr is
		// the architectural effective address.
		if e.Cycle != c.predCycle {
			c.fail("access predicted at cycle %d issued at cycle %d", c.predCycle, e.Cycle)
			return
		}
		if c.predFail == 0 {
			if e.Addr != c.predAddr {
				c.fail("cycle %d pc %#x: verified prediction %#x != architectural address %#x (fac OK-contract violated)",
					e.Cycle, e.PC, c.predAddr, e.Addr)
				return
			}
		} else {
			if !c.haveReplay {
				c.fail("cycle %d pc %#x: failed prediction (%v) issued without a replay", e.Cycle, e.PC, c.predFail)
				return
			}
			if e.Addr != c.replayAddr {
				c.fail("cycle %d pc %#x: replay address %#x != architectural address %#x",
					e.Cycle, e.PC, c.replayAddr, e.Addr)
				return
			}
		}
		c.havePred = false
		c.haveReplay = false

	case obs.KindStall:
		if c.stallCycles[e.Cycle] {
			c.fail("cycle %d: two stall events in one cycle", e.Cycle)
			return
		}
		if e.Cause >= obs.NumStallCauses {
			c.fail("cycle %d: unknown stall cause %d", e.Cycle, e.Cause)
			return
		}
		c.stallCycles[e.Cycle] = true
		c.stallCounts[e.Cause]++
	}
}

// verify checks the end-of-run relationships between the observed event
// stream, the run statistics, and the instruction-class counts of the
// source stream.
func (c *checker) verify(st pipeline.Stats, want streamCounts) error {
	if c.err != nil {
		return c.err
	}
	if c.havePred {
		return fmt.Errorf("run ended with a prediction at cycle %d never issued", c.predCycle)
	}

	// Stream composition.
	if st.Insts != want.insts {
		return fmt.Errorf("issued %d insts, stream has %d", st.Insts, want.insts)
	}
	if st.Loads != want.loads || st.Stores != want.stores {
		return fmt.Errorf("counted %d loads / %d stores, stream has %d / %d",
			st.Loads, st.Stores, want.loads, want.stores)
	}
	if st.BranchLookups != want.controls {
		return fmt.Errorf("%d branch lookups, stream has %d control transfers", st.BranchLookups, want.controls)
	}
	if st.LoadLatency.Count != st.Loads {
		return fmt.Errorf("load-latency histogram has %d samples, %d loads issued", st.LoadLatency.Count, st.Loads)
	}

	// Speculation accounting: stats mirror the event stream exactly, and
	// replays equal verification failures.
	if c.loadSpec != st.LoadsSpeculated || c.storeSpec != st.StoresSpeculated {
		return fmt.Errorf("event stream saw %d/%d speculated loads/stores, stats say %d/%d",
			c.loadSpec, c.storeSpec, st.LoadsSpeculated, st.StoresSpeculated)
	}
	if c.loadFail != st.LoadSpecFailed || c.storeFail != st.StoreSpecFailed {
		return fmt.Errorf("event stream saw %d/%d failed loads/stores, stats say %d/%d",
			c.loadFail, c.storeFail, st.LoadSpecFailed, st.StoreSpecFailed)
	}
	if c.replays != c.loadFail+c.storeFail {
		return fmt.Errorf("%d replays for %d verification failures", c.replays, c.loadFail+c.storeFail)
	}
	if st.ExtraAccesses != c.replays {
		return fmt.Errorf("stats count %d extra accesses, event stream saw %d replays", st.ExtraAccesses, c.replays)
	}
	if c.loadKinds != st.LoadFailKinds || c.storeKinds != st.StoreFailKinds {
		return fmt.Errorf("failure-kind breakdown diverged: events %v/%v, stats %v/%v",
			c.loadKinds, c.storeKinds, st.LoadFailKinds, st.StoreFailKinds)
	}
	if c.loadNoPred != st.LoadsNoPredict || c.storeNoPred != st.StoresNoPredict {
		return fmt.Errorf("event stream saw %d/%d declined loads/stores, stats say %d/%d",
			c.loadNoPred, c.storeNoPred, st.LoadsNoPredict, st.StoresNoPredict)
	}
	pred := c.cfg.PredictorName()
	if pred == "" && c.loadSpec+c.storeSpec+c.replays+c.loadNoPred+c.storeNoPred != 0 {
		return fmt.Errorf("machine without a predictor speculated (%d loads, %d stores, %d replays, %d/%d declined)",
			c.loadSpec, c.storeSpec, c.replays, c.loadNoPred, c.storeNoPred)
	}
	if pred != "" && !c.cfg.SpeculateStores && c.storeSpec+c.storeNoPred != 0 {
		// Ineligible stores never reach the prediction machine, so they can
		// neither speculate nor be declined.
		return fmt.Errorf("store speculation disabled but %d stores speculated, %d declined", c.storeSpec, c.storeNoPred)
	}
	if pred != "" && !c.cfg.SpeculateRegReg {
		// Without reg+reg speculation the conservative negative-index-
		// register signal can never fire on operand-based machines:
		// constant offsets take the negative-constant path. The slot only
		// exists on machines whose signal set includes it.
		for i, name := range predict.SignalNamesFor(pred) {
			if name != "negindexreg" {
				continue
			}
			if c.loadKinds[i] != 0 || c.storeKinds[i] != 0 {
				return fmt.Errorf("negindexreg failures (%d/%d) without reg+reg speculation",
					c.loadKinds[i], c.storeKinds[i])
			}
		}
	}

	// Stall partition: every simulated cycle either issued or carries
	// exactly one attributed stall event, and the per-cause counters
	// reproduce the stats.
	if got := uint64(len(c.issueCycles)); got != st.IssueActiveCycles {
		return fmt.Errorf("%d issue-active cycles in events, stats say %d", got, st.IssueActiveCycles)
	}
	if c.stallCounts != st.StallCycles {
		return fmt.Errorf("per-cause stall counts diverged: events %v, stats %v", c.stallCounts, st.StallCycles)
	}
	var maxCycle uint64
	for cy := range c.issueCycles {
		if c.stallCycles[cy] {
			return fmt.Errorf("cycle %d both issued and stalled", cy)
		}
		if cy > maxCycle {
			maxCycle = cy
		}
	}
	for cy := range c.stallCycles {
		if cy > maxCycle {
			maxCycle = cy
		}
	}
	n := uint64(len(c.issueCycles) + len(c.stallCycles))
	if n > 0 && maxCycle != n-1 {
		return fmt.Errorf("issue/stall cycles are not a contiguous partition: %d cycles seen, last is %d", n, maxCycle)
	}
	return nil
}
