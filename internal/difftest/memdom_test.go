package difftest

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/staticfac"
)

var updateMemGoldens = flag.Bool("update", false, "rewrite memory-domain golden reports")

// TestMemoryDomainCorpus drives the three memory-domain microbenchmarks
// through the full differential oracle (which includes the value-soundness
// cross-check on every FAC machine), asserts the sharp static claims
// directly, and pins each program's fac/static/v1 report against a golden
// file (refresh with -update).
//
//   - memglobal.s: a memory-resident global loop limit; the re-load must
//     carry a global-cell claim bounded by the single store, and the
//     strided store it guards must classify as proven_predictable.
//   - memstack.s: a spilled-local loop limit; the re-load must carry an
//     exact stack-slot claim and the guarded store must classify.
//   - memescape.s: the negative case; after the slot's address escapes
//     into a callee that rewrites it, no load may carry a slot claim (the
//     stale value 5 would be dynamically refuted — the callee stores 6).
func TestMemoryDomainCorpus(t *testing.T) {
	for _, tc := range []struct {
		file   string
		verify func(t *testing.T, a *staticfac.Analysis)
	}{
		{"memglobal.s", func(t *testing.T, a *staticfac.Analysis) {
			var cell *staticfac.Site
			for i := range a.Sites {
				s := &a.Sites[i]
				if !s.Store && s.CellKind == staticfac.CellGlobal {
					cell = s
				}
				if s.Inst.Op.IsStore() && s.Mode != 0 && s.Verdict != staticfac.VerdictPredictable {
					t.Errorf("guarded store %#x is %v, want proven_predictable", s.PC, s.Verdict)
				}
			}
			if cell == nil {
				t.Fatal("no load carries a global-cell claim")
			}
			if cell.Val.IV.Lo() != 0 || cell.Val.IV.Hi() != 8 {
				t.Errorf("global cell claim %v, want interval [0, 8] (image 0 joined with the store of 8)", cell.Val)
			}
		}},
		{"memstack.s", func(t *testing.T, a *staticfac.Analysis) {
			var cell *staticfac.Site
			for i := range a.Sites {
				s := &a.Sites[i]
				if !s.Store && s.CellKind == staticfac.CellStack {
					cell = s
				}
				if s.Inst.Op.IsStore() && s.Mode != 0 && s.Verdict != staticfac.VerdictPredictable {
					t.Errorf("guarded store %#x is %v, want proven_predictable", s.PC, s.Verdict)
				}
			}
			if cell == nil {
				t.Fatal("no load carries a stack-slot claim")
			}
			if !cell.Val.K.IsExact() || cell.Val.K.Ones != 8 {
				t.Errorf("stack slot claim %v, want exactly 8 (the spilled bound)", cell.Val)
			}
		}},
		{"memescape.s", func(t *testing.T, a *staticfac.Analysis) {
			for i := range a.Sites {
				s := &a.Sites[i]
				if !s.Store && s.CellKind == staticfac.CellStack {
					t.Errorf("load %#x (%v) claims escaped stack slot %#x = %v; the callee rewrites it",
						s.PC, s.Inst, s.CellAddr, s.Val)
				}
			}
		}},
	} {
		t.Run(tc.file, func(t *testing.T) {
			p := buildCorpus(t, tc.file)
			if err := Run(p, 100_000); err != nil {
				t.Fatal(err)
			}
			m := machineByName(t, "fac32")
			a := staticfac.Analyze(p, m.Cfg.FACGeometry())
			tc.verify(t, a)

			rep := staticfac.NewReport(a)
			name := tc.file[:len(tc.file)-2]
			rep.Add(name, "base", a)
			got, err := rep.Encode()
			if err != nil {
				t.Fatal(err)
			}
			golden := filepath.Join("testdata", "staticfac", name+".json")
			if *updateMemGoldens {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("report differs from %s (run with -update to regenerate)", golden)
			}
		})
	}
}
