package difftest

import (
	"fmt"

	"repro/internal/fac"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/staticfac"
)

// staticOracle caches one static FAC-predictability analysis per predictor
// geometry and checks every dynamic per-site counter stream against it.
// This is the soundness cross-check of the static analysis: the dataflow
// claims hold for EVERY execution, so one observed execution can refute
// them but never confirm them — any disagreement is a bug in the analysis
// (or in the predictor model it reasons about).
type staticOracle struct {
	p  *prog.Program
	by map[fac.Config]*staticfac.Analysis
}

func newStaticOracle(p *prog.Program) *staticOracle {
	return &staticOracle{p: p, by: make(map[fac.Config]*staticfac.Analysis)}
}

func (o *staticOracle) analysis(g fac.Config) *staticfac.Analysis {
	a := o.by[g]
	if a == nil {
		a = staticfac.Analyze(o.p, g)
		o.by[g] = a
	}
	return a
}

// check verifies one machine's dynamic site counters against the static
// verdicts for that machine's geometry:
//
//   - every dynamically speculated site must exist statically and be
//     reachable in the recovered CFG;
//   - every observed failure signal must be in the static CanFail set;
//   - proven_predictable sites must never replay;
//   - proven_failing (MustFail) sites must replay on every speculation.
func (o *staticOracle) check(g fac.Config, sites *obs.SiteCollector) error {
	a := o.analysis(g)
	for _, d := range sites.All() {
		s := a.SiteAt(d.PC)
		if s == nil {
			return fmt.Errorf("static soundness: dynamic FAC site %#x has no static site", d.PC)
		}
		if !s.Reached {
			return fmt.Errorf("static soundness: site %#x (%v) executed but statically unreachable",
				d.PC, s.Inst)
		}
		if bad := d.FailMask &^ s.CanFail; bad != 0 {
			return fmt.Errorf("static soundness: site %#x (%v) observed failure %v outside static CanFail %v",
				d.PC, s.Inst, bad, s.CanFail)
		}
		if s.Verdict == staticfac.VerdictPredictable && d.Fails > 0 {
			return fmt.Errorf("static soundness: proven_predictable site %#x (%v) replayed %d/%d speculations",
				d.PC, s.Inst, d.Fails, d.Speculated)
		}
		if s.MustFail && d.Fails != d.Speculated {
			return fmt.Errorf("static soundness: proven_failing site %#x (%v) verified %d of %d speculations",
				d.PC, s.Inst, d.Speculated-d.Fails, d.Speculated)
		}
	}
	return nil
}
