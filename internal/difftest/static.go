package difftest

import (
	"fmt"

	"repro/internal/fac"
	"repro/internal/obs"
	"repro/internal/prog"
	"repro/internal/staticfac"
)

// staticOracle caches one static FAC-predictability analysis per predictor
// geometry and checks every dynamic per-site counter stream against it.
// This is the soundness cross-check of the static analysis: the dataflow
// claims hold for EVERY execution, so one observed execution can refute
// them but never confirm them — any disagreement is a bug in the analysis
// (or in the predictor model it reasons about).
type staticOracle struct {
	p  *prog.Program
	by map[fac.Config]*staticfac.Analysis
}

func newStaticOracle(p *prog.Program) *staticOracle {
	return &staticOracle{p: p, by: make(map[fac.Config]*staticfac.Analysis)}
}

func (o *staticOracle) analysis(g fac.Config) *staticfac.Analysis {
	a := o.by[g]
	if a == nil {
		a = staticfac.Analyze(o.p, g)
		o.by[g] = a
	}
	return a
}

// check verifies one machine's dynamic site counters against the static
// verdicts for that machine's geometry:
//
//   - every dynamically speculated site must exist statically and be
//     reachable in the recovered CFG;
//   - every observed failure signal must be in the static CanFail set;
//   - proven_predictable sites must never replay;
//   - proven_failing (MustFail) sites must replay on every speculation.
func (o *staticOracle) check(g fac.Config, sites *obs.SiteCollector) error {
	a := o.analysis(g)
	for _, d := range sites.All() {
		s := a.SiteAt(d.PC)
		if s == nil {
			return fmt.Errorf("static soundness: dynamic FAC site %#x has no static site", d.PC)
		}
		if !s.Reached {
			return fmt.Errorf("static soundness: site %#x (%v) executed but statically unreachable",
				d.PC, s.Inst)
		}
		if bad := d.FailMask &^ s.CanFail; bad != 0 {
			return fmt.Errorf("static soundness: site %#x (%v) observed failure %v outside static CanFail %v",
				d.PC, s.Inst, bad, s.CanFail)
		}
		if s.Verdict == staticfac.VerdictPredictable && d.Fails > 0 {
			return fmt.Errorf("static soundness: proven_predictable site %#x (%v) replayed %d/%d speculations",
				d.PC, s.Inst, d.Fails, d.Speculated)
		}
		if s.MustFail && d.Fails != d.Speculated {
			return fmt.Errorf("static soundness: proven_failing site %#x (%v) verified %d of %d speculations",
				d.PC, s.Inst, d.Speculated-d.Fails, d.Speculated)
		}
		if err := checkSiteValue(s, d); err != nil {
			return err
		}
	}
	return nil
}

// checkSiteValue verifies the memory domain's per-site value claim against
// the observed-value aggregates: the static analysis asserts that EVERY
// value the site transfers lies inside Val (known-bits and interval), so
// the OR of observed values may not set a proven-zero bit, the AND may not
// clear a proven-one bit, and the unsigned min/max must stay inside the
// interval. One observed violation is a soundness bug in the memory
// domain (a missed store effect, a wrong escape or clobber rule).
func checkSiteValue(s *staticfac.Site, d *obs.SiteStats) error {
	if s.CellKind == staticfac.CellNone || d.ValCount == 0 {
		return nil
	}
	v := s.Val
	if bad := d.ValOr & v.K.Zeros; bad != 0 {
		return fmt.Errorf("static value soundness: site %#x (%v) %s cell %#x observed one-bits %#08x where static claims zeros (val %v)",
			d.PC, s.Inst, s.CellKind, s.CellAddr, bad, v)
	}
	if bad := ^d.ValAnd & v.K.Ones; bad != 0 {
		return fmt.Errorf("static value soundness: site %#x (%v) %s cell %#x observed zero-bits %#08x where static claims ones (val %v)",
			d.PC, s.Inst, s.CellKind, s.CellAddr, bad, v)
	}
	if d.ValMin < v.IV.Lo() || d.ValMax > v.IV.Hi() {
		return fmt.Errorf("static value soundness: site %#x (%v) %s cell %#x observed values [%#x, %#x] outside static interval %v",
			d.PC, s.Inst, s.CellKind, s.CellAddr, d.ValMin, d.ValMax, v.IV)
	}
	return nil
}
