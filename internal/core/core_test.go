package core

import (
	"strings"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/prog"
)

const helloAsm = `
	.data
msg:	.asciiz "hi"
	.text
main:
	la $a0, msg
	li $v0, 4
	syscall
	li $v0, 10
	syscall
`

func TestBuildAndRun(t *testing.T) {
	res, err := BuildAndRun(helloAsm, prog.DefaultConfig(), pipeline.DefaultConfig(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != "hi" {
		t.Errorf("output = %q", res.Output)
	}
	if res.Stats.Insts == 0 || res.Stats.Cycles == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
	if res.IPC() <= 0 {
		t.Error("IPC non-positive")
	}
	if res.MemFootprint == 0 {
		t.Error("no memory footprint recorded")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("main:\n\tbogus\n", prog.DefaultConfig()); err == nil {
		t.Error("assembler error not surfaced")
	}
	if _, err := BuildAndRun("main:\n\tbogus\n", prog.DefaultConfig(), pipeline.DefaultConfig(), 0); err == nil {
		t.Error("BuildAndRun error not surfaced")
	}
}

func TestRunFunctionalMatchesTiming(t *testing.T) {
	p, err := Build(helloAsm, prog.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := RunFunctional(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, pipeline.DefaultConfig(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if e.Out.String() != res.Output {
		t.Errorf("functional %q != timing %q", e.Out.String(), res.Output)
	}
	if e.InstCount != res.Stats.Insts {
		t.Errorf("instruction counts differ: %d vs %d", e.InstCount, res.Stats.Insts)
	}
}

func TestRunFaultPropagates(t *testing.T) {
	p, err := Build("main:\n\tli $t0, 3\n\tlw $t1, 0($t0)\n\tjr $ra\n", prog.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(p, pipeline.DefaultConfig(), 0); err == nil || !strings.Contains(err.Error(), "unaligned") {
		t.Errorf("fault not propagated: %v", err)
	}
}

func TestBadMachineConfig(t *testing.T) {
	p, err := Build(helloAsm, prog.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := pipeline.DefaultConfig()
	cfg.FetchWidth = 0
	if _, err := Run(p, cfg, 0); err == nil {
		t.Error("invalid machine config accepted")
	}
}
