// Package core is the public facade of the fast-address-calculation study:
// it assembles and links programs, runs them on the timing simulator with or
// without fast address calculation, and returns combined functional +
// timing results. The experiment harness, the examples, and the benchmark
// suite are all built on this package.
package core

import (
	"context"
	"fmt"

	"repro/internal/asm"
	"repro/internal/emu"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/predict"
	"repro/internal/prog"
)

// Build assembles one translation unit and links it.
func Build(source string, link prog.Config) (*prog.Program, error) {
	o, err := asm.Assemble(source)
	if err != nil {
		return nil, err
	}
	return prog.Link(o, link)
}

// Result combines the functional outcome of a run with its timing.
type Result struct {
	Stats    pipeline.Stats
	Output   string
	ExitCode int32
	// MemFootprint is the number of data bytes touched (whole pages), the
	// paper's "memory usage" metric.
	MemFootprint uint64
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 { return r.Stats.IPC() }

// traceSource adapts the emulator to the pipeline's Source interface. It
// also implements pipeline.BatchSource so the cycle loop can pull traces
// in bulk, amortizing the per-instruction interface call and letting the
// emulator write each trace in place.
type traceSource struct {
	e *emu.Emulator
}

func (t *traceSource) Next() (emu.Trace, bool, error) {
	if t.e.Halted {
		return emu.Trace{}, false, nil
	}
	tr, err := t.e.Step()
	if err != nil {
		return emu.Trace{}, false, err
	}
	return tr, true, nil
}

func (t *traceSource) NextBatch(buf []emu.Trace) (int, error) {
	n := 0
	for n < len(buf) && !t.e.Halted {
		if err := t.e.StepInto(&buf[n]); err != nil {
			return 0, err
		}
		n++
	}
	return n, nil
}

// Run executes the program on the timing simulator. maxInsts bounds the
// dynamic instruction count (0 = unlimited).
func Run(p *prog.Program, machine pipeline.Config, maxInsts uint64) (Result, error) {
	return RunWithSink(p, machine, maxInsts, nil)
}

// RunWithSink executes the program on the timing simulator with an
// observability sink attached (nil disables the event stream; see
// internal/obs). cmd/facprof and cmd/facsim -trace are built on this.
func RunWithSink(p *prog.Program, machine pipeline.Config, maxInsts uint64, sink obs.Sink) (Result, error) {
	return RunCtx(nil, p, machine, maxInsts, sink)
}

// RunCtx is RunWithSink with cancellation: a non-nil context's deadline
// or cancellation aborts the simulation's cycle loop promptly with an
// error wrapping ctx.Err(). The simulation service (internal/simsvc)
// uses this for per-job deadlines and client-disconnect cancellation; a
// nil ctx disables the checks at zero cost.
func RunCtx(ctx context.Context, p *prog.Program, machine pipeline.Config, maxInsts uint64, sink obs.Sink) (Result, error) {
	// The selective machine consults staticfac verdicts baked per linked
	// program; this is the layer that has the program in hand, so the bake
	// happens here unless the caller supplied a table already.
	if machine.PredictorName() == "selective" && machine.StaticTable == nil {
		machine.StaticTable = predict.BuildStaticTable(p, machine.FACGeometry())
	}
	e := emu.New(p)
	e.MaxInsts = maxInsts
	stats, err := pipeline.RunCtx(ctx, machine, &traceSource{e}, sink)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Stats:        stats,
		Output:       e.Out.String(),
		ExitCode:     e.ExitCode,
		MemFootprint: e.Mem.Footprint(),
	}, nil
}

// RunFunctional executes the program on the emulator alone (no timing),
// returning the final emulator state for profiling and output checks.
func RunFunctional(p *prog.Program, maxInsts uint64) (*emu.Emulator, error) {
	e := emu.New(p)
	e.MaxInsts = maxInsts
	if err := e.Run(); err != nil {
		return e, err
	}
	return e, nil
}

// BuildAndRun is the one-call convenience: assemble, link, simulate.
func BuildAndRun(source string, link prog.Config, machine pipeline.Config, maxInsts uint64) (Result, error) {
	p, err := Build(source, link)
	if err != nil {
		return Result{}, fmt.Errorf("core: %w", err)
	}
	return Run(p, machine, maxInsts)
}
