package fac

import (
	"math/rand"
	"testing"
)

// geo16 is the paper's Figure 5 geometry: 16KB direct-mapped, 16-byte blocks.
var geo16 = Config{BlockBits: 4, SetBits: 14}

func TestValidate(t *testing.T) {
	if err := geo16.Validate(); err != nil {
		t.Errorf("geo16 invalid: %v", err)
	}
	bad := []Config{
		{BlockBits: 1, SetBits: 14},
		{BlockBits: 5, SetBits: 5},
		{BlockBits: 5, SetBits: 30},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) passed", c)
		}
	}
}

func TestFieldExtraction(t *testing.T) {
	c := Config{BlockBits: 5, SetBits: 14}
	addr := uint32(0x7fff5b84)
	if got := c.BlockOffset(addr); got != 0x4 {
		t.Errorf("BlockOffset = %#x", got)
	}
	if got := c.Index(addr); got != (0x5b84>>5)&0x1FF {
		t.Errorf("Index = %#x", got)
	}
	if got := c.Tag(addr); got != addr>>14 {
		t.Errorf("Tag = %#x", got)
	}
}

// TestPaperFigure5 replays the paper's four worked examples (16KB
// direct-mapped cache, 16-byte blocks).
func TestPaperFigure5(t *testing.T) {
	cases := []struct {
		name          string
		base, ofs     uint32
		isReg         bool
		wantOK        bool
		wantPredicted uint32
	}{
		// (a) pointer dereference, zero offset.
		{"zero-offset deref", 0x100400AC, 0, false, true, 0x100400AC},
		// (b) global through an aligned global pointer.
		{"aligned gp", 0x10000000, 2436, false, true, 0x10000984},
		// (c) stack access, offset spans only the block offset + OR-able bits.
		{"small stack offset", 0x7fff5b84, 0x66, false, true, 0x7fff5bea},
		// (d) stack access with a larger offset: carry propagates out of the
		// block offset and is generated in the set index -> misprediction.
		{"carry in index", 0x7fff5b84, 364, false, false, 0x7fff5be0},
	}
	for _, c := range cases {
		got := geo16.Predict(c.base, c.ofs, c.isReg)
		if got.OK != c.wantOK {
			t.Errorf("%s: OK = %v, want %v (failure %v)", c.name, got.OK, c.wantOK, got.Failure)
		}
		if got.Predicted != c.wantPredicted {
			t.Errorf("%s: predicted %#x, want %#x", c.name, got.Predicted, c.wantPredicted)
		}
		if c.wantOK && got.Predicted != c.base+c.ofs {
			t.Errorf("%s: OK but predicted %#x != actual %#x", c.name, got.Predicted, c.base+c.ofs)
		}
	}
	// Example (d) must raise both Overflow and GenCarry, per the figure.
	r := geo16.Predict(0x7fff5b84, 364, false)
	if r.Failure&FailOverflow == 0 || r.Failure&FailGenCarry == 0 {
		t.Errorf("example (d) failure = %v, want overflow|gencarry", r.Failure)
	}
}

func TestFailureSignals(t *testing.T) {
	cases := []struct {
		name      string
		base, ofs uint32
		isReg     bool
		want      Failure
	}{
		{"clean", 0x1000, 0x4, false, 0},
		{"overflow only", 0x100C, 0x4, false, FailOverflow},
		{"gencarry index", 0x1010, 0x10, false, FailGenCarry},
		{"gencarry tag (no tag adder)", 0x10000000, 0x10000000, false, FailGenCarry},
		{"neg index register", 0x1000, 0xFFFFFFFC, true, FailNegIndexReg},
		{"neg const same block ok", 0x100C, 0xFFFFFFFC, false, 0}, // 0x100C-4
		{"neg const borrows", 0x1000, 0xFFFFFFFC, false, FailOverflow},
		{"neg const too large", 0x105C, 0xFFFFFFE4, false, FailLargeNegConst},
		{"neg const large and borrows", 0x1050, 0xFFFFFFE0, false, FailLargeNegConst | FailOverflow},
	}
	for _, c := range cases {
		got := geo16.Predict(c.base, c.ofs, c.isReg)
		if got.Failure != c.want {
			t.Errorf("%s: failure = %v, want %v", c.name, got.Failure, c.want)
		}
		if (got.Failure == 0) != got.OK {
			t.Errorf("%s: OK/Failure inconsistent", c.name)
		}
	}
}

func TestNegConstSameBlock(t *testing.T) {
	// base block offset 12; -4, -8, -12 stay in block, -13.. borrow.
	base := uint32(0x234C)
	for k := uint32(1); k <= 15; k++ {
		r := geo16.Predict(base, -k, false)
		wantOK := k <= 12
		if r.OK != wantOK {
			t.Errorf("offset -%d: OK = %v, want %v", k, r.OK, wantOK)
		}
		if r.OK && r.Predicted != base-k {
			t.Errorf("offset -%d: predicted %#x want %#x", k, r.Predicted, base-k)
		}
	}
	// -16 can never stay in the same block.
	if r := geo16.Predict(base, ^uint32(15), false); r.OK {
		t.Error("offset -16 predicted OK")
	}
}

func TestTagAdderHelps(t *testing.T) {
	// A large register+register-style offset whose conflicts are confined to
	// the tag field: OR fails, tag adder succeeds.
	cfg := geo16
	cfgTag := geo16
	cfgTag.TagAdder = true
	base := uint32(0x10004000) // bit 14 set (tag field)
	ofs := uint32(0x10004000)  // same tag bit -> generate in tag
	plain := cfg.Predict(base, ofs, false)
	withAdder := cfgTag.Predict(base, ofs, false)
	if plain.OK {
		t.Error("plain OR predicted OK despite tag conflict")
	}
	if !withAdder.OK {
		t.Errorf("tag adder failed: %v", withAdder.Failure)
	}
	if withAdder.Predicted != base+ofs {
		t.Errorf("tag adder predicted %#x, want %#x", withAdder.Predicted, base+ofs)
	}
	// But the tag adder cannot save index-field conflicts.
	if r := cfgTag.Predict(0x1010, 0x10, false); r.OK {
		t.Error("tag adder saved an index conflict")
	}
}

func TestZeroOffsetAlwaysPredicts(t *testing.T) {
	// Zero offsets (the dominant general-pointer case in the paper's
	// profiles) always verify, at any base alignment.
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		base := r.Uint32()
		res := geo16.Predict(base, 0, false)
		if !res.OK || res.Predicted != base {
			t.Fatalf("zero offset failed at base %#x: %+v", base, res)
		}
	}
}

func TestAlignedBasePredictsWithinRegion(t *testing.T) {
	// A base aligned to 2^k predicts any positive offset < 2^k with no
	// carry out of the block offset... i.e., any multiple-of-block offset.
	for _, geo := range []Config{geo16, {BlockBits: 5, SetBits: 14}} {
		base := uint32(0x40000000) // strongly aligned
		for ofs := uint32(0); ofs < 1<<16; ofs += 4 {
			res := geo.Predict(base, ofs, false)
			if !res.OK {
				t.Fatalf("aligned base failed at ofs %#x: %v", ofs, res.Failure)
			}
			if res.Predicted != base+ofs {
				t.Fatalf("aligned base wrong at ofs %#x", ofs)
			}
		}
	}
}

// Property: OK implies the predicted address equals the architectural
// address, for every geometry and operand combination.
func TestSoundnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	geos := []Config{
		{BlockBits: 4, SetBits: 14},
		{BlockBits: 5, SetBits: 14},
		{BlockBits: 4, SetBits: 14, TagAdder: true},
		{BlockBits: 5, SetBits: 14, TagAdder: true},
		{BlockBits: 6, SetBits: 16},
		{BlockBits: 2, SetBits: 10},
	}
	for i := 0; i < 200000; i++ {
		geo := geos[i%len(geos)]
		base := r.Uint32()
		var ofs uint32
		switch i % 5 {
		case 0:
			ofs = uint32(int32(int16(r.Uint32()))) // constant-offset range
		case 1:
			ofs = r.Uint32() & 0xFF // small positive
		case 2:
			ofs = -(r.Uint32() & 0x3F) // small negative
		case 3:
			ofs = r.Uint32() // anything
		case 4:
			ofs = 0
		}
		isReg := i%7 == 0
		res := geo.Predict(base, ofs, isReg)
		if res.OK && res.Predicted != base+ofs {
			t.Fatalf("unsound: geo=%+v base=%#x ofs=%#x reg=%v -> %+v (actual %#x)",
				geo, base, ofs, isReg, res, base+ofs)
		}
	}
}

// Property: for constant offsets the verification circuit is exact — it
// fails exactly when the speculative address is wrong. (Register offsets
// are conservative only in the negative case.)
func TestExactnessProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	geos := []Config{
		{BlockBits: 4, SetBits: 14},
		{BlockBits: 5, SetBits: 14},
		{BlockBits: 4, SetBits: 14, TagAdder: true},
		{BlockBits: 5, SetBits: 15, TagAdder: true},
	}
	for i := 0; i < 200000; i++ {
		geo := geos[i%len(geos)]
		base := r.Uint32()
		ofs := uint32(int32(int16(r.Uint32())))
		res := geo.Predict(base, ofs, false)
		correct := res.Predicted == base+ofs
		if res.OK != correct {
			t.Fatalf("inexact: geo=%+v base=%#x ofs=%#x -> OK=%v but correct=%v (pred %#x actual %#x, fail %v)",
				geo, base, ofs, res.OK, correct, res.Predicted, base+ofs, res.Failure)
		}
	}
}

// Property: non-negative register offsets behave identically to constant
// offsets.
func TestRegOffsetParity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 50000; i++ {
		base := r.Uint32()
		ofs := r.Uint32() & 0x7FFFFFFF
		a := geo16.Predict(base, ofs, false)
		b := geo16.Predict(base, ofs, true)
		if a != b {
			t.Fatalf("parity violated at base=%#x ofs=%#x: %+v vs %+v", base, ofs, a, b)
		}
	}
}

func TestFailureString(t *testing.T) {
	if Failure(0).String() != "ok" {
		t.Error("zero failure string")
	}
	f := FailOverflow | FailGenCarry
	if f.String() != "overflow|gencarry" {
		t.Errorf("failure string = %q", f.String())
	}
	all := FailOverflow | FailGenCarry | FailLargeNegConst | FailNegIndexReg
	if all.String() != "overflow|gencarry|largenegconst|negindexreg" {
		t.Errorf("all-failure string = %q", all.String())
	}
}

func BenchmarkPredict(b *testing.B) {
	r := rand.New(rand.NewSource(6))
	bases := make([]uint32, 1024)
	offs := make([]uint32, 1024)
	for i := range bases {
		bases[i] = r.Uint32()
		offs[i] = uint32(int32(int16(r.Uint32())))
	}
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		res := geo16.Predict(bases[i&1023], offs[i&1023], false)
		sink += res.Predicted
	}
	_ = sink
}

// TestFailureMaskExhaustive enumerates all 16 possible signal masks and
// checks String and CountInto against an independently computed model, so
// multi-signal aggregation (several signals raised by one access) is
// pinned, not just the single-signal cases.
func TestFailureMaskExhaustive(t *testing.T) {
	for mask := 0; mask < 1<<NumFailureSignals; mask++ {
		var f Failure
		wantStr := ""
		var wantCounts [NumFailureSignals]uint64
		for i, sig := range FailureSignals {
			if mask&(1<<i) == 0 {
				continue
			}
			f |= sig
			if wantStr != "" {
				wantStr += "|"
			}
			wantStr += FailureSignalNames[i]
			wantCounts[i] = 3 // CountInto is applied three times below
		}
		if wantStr == "" {
			wantStr = "ok"
		}
		if got := f.String(); got != wantStr {
			t.Errorf("mask %#x: String() = %q, want %q", mask, got, wantStr)
		}
		var counts [NumFailureSignals]uint64
		for i := 0; i < 3; i++ {
			f.CountInto(&counts)
		}
		if counts != wantCounts {
			t.Errorf("mask %#x: CountInto -> %v, want %v", mask, counts, wantCounts)
		}
	}
}

// TestValidateBoundaries walks both parameters across their exact limits:
// BlockBits spans [2, 12] and SetBits must lie in (BlockBits, 28].
func TestValidateBoundaries(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{BlockBits: 2, SetBits: 3}, true},    // both at lower bound
		{Config{BlockBits: 2, SetBits: 2}, false},   // SetBits == BlockBits
		{Config{BlockBits: 1, SetBits: 10}, false},  // BlockBits below range
		{Config{BlockBits: 0, SetBits: 10}, false},  // zero value
		{Config{BlockBits: 12, SetBits: 13}, true},  // BlockBits at upper bound
		{Config{BlockBits: 13, SetBits: 14}, false}, // BlockBits above range
		{Config{BlockBits: 5, SetBits: 28}, true},   // SetBits at upper bound
		{Config{BlockBits: 5, SetBits: 29}, false},  // SetBits above range
		{Config{BlockBits: 5, SetBits: 6}, true},    // SetBits == BlockBits+1
		{Config{BlockBits: 5, SetBits: 5}, false},   // index field would be empty
	}
	for _, c := range cases {
		// TagAdder never affects validity.
		for _, tag := range []bool{false, true} {
			cfg := c.cfg
			cfg.TagAdder = tag
			err := cfg.Validate()
			if c.ok && err != nil {
				t.Errorf("Validate(%+v) = %v, want ok", cfg, err)
			}
			if !c.ok && err == nil {
				t.Errorf("Validate(%+v) passed, want error", cfg)
			}
		}
	}
}
