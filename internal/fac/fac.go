// Package fac implements the paper's primary contribution: the fast address
// calculation predictor (Austin, Pnevmatikatos & Sohi, ISCA 1995, Section 3
// and Figure 4).
//
// The predictor produces (part of) a load/store effective address early
// enough to access an on-chip data cache in the same cycle as address
// generation. The set-index portion of the address is formed by carry-free
// addition — a single OR of the index fields of the base register and the
// offset — while a small full adder computes the block-offset bits and,
// optionally, a second adder computes the tag bits. A decoupled verification
// circuit detects the four failure conditions; on failure the access is
// replayed with the architectural address computed in parallel.
package fac

import "fmt"

// Failure is a bitmask of the verification circuit's failure signals
// (paper Section 3, conditions 1-4).
type Failure uint8

const (
	// FailOverflow: a carry (or, for negative constant offsets, a borrow)
	// propagates out of the block-offset portion of the address computation.
	FailOverflow Failure = 1 << iota
	// FailGenCarry: a carry is generated within the set-index portion
	// (carry-free OR differs from true addition). Without the optional tag
	// adder the same test covers the tag bits.
	FailGenCarry
	// FailLargeNegConst: a negative constant offset too large in magnitude
	// to land in the same cache block as the base address.
	FailLargeNegConst
	// FailNegIndexReg: a register offset with its sign bit set; register
	// operands arrive too late for set-index inversion, so negative index
	// registers conservatively fail (paper Section 3).
	FailNegIndexReg
)

// NumFailureSignals is the number of distinct verification failure
// signals; a Failure mask may raise several at once.
const NumFailureSignals = 4

// FailureSignals lists the individual signals in counter-index order
// (the order FailureSignalNames and CountInto use).
var FailureSignals = [NumFailureSignals]Failure{
	FailOverflow, FailGenCarry, FailLargeNegConst, FailNegIndexReg,
}

// FailureSignalNames names each signal, indexed as FailureSignals.
var FailureSignalNames = [NumFailureSignals]string{
	"overflow", "gencarry", "largenegconst", "negindexreg",
}

// CountInto increments one counter per raised signal in f; counts is
// indexed as FailureSignals. It is the aggregation primitive behind the
// per-kind failure breakdown in run statistics.
func (f Failure) CountInto(counts *[NumFailureSignals]uint64) {
	for i, sig := range FailureSignals {
		if f&sig != 0 {
			counts[i]++
		}
	}
}

func (f Failure) String() string {
	if f == 0 {
		return "ok"
	}
	s := ""
	for i, sig := range FailureSignals {
		if f&sig != 0 {
			if s != "" {
				s += "|"
			}
			s += FailureSignalNames[i]
		}
	}
	return s
}

// Config describes the cache geometry the predictor is built for.
// BlockBits is log2 of the cache block size (the span of the block-offset
// full adder); SetBits is log2 of the cache's direct-mapped span in bytes
// (block offset + set index fields together), e.g. 14 for a 16KB
// direct-mapped cache.
type Config struct {
	BlockBits uint
	SetBits   uint
	// TagAdder enables full addition in the tag portion of the effective
	// address computation (paper Section 3.1 discusses this variant and
	// finds it of limited value).
	TagAdder bool
}

// Validate reports whether the geometry is sensible.
func (c Config) Validate() error {
	if c.BlockBits < 2 || c.BlockBits > 12 {
		return fmt.Errorf("fac: BlockBits %d out of range [2,12]", c.BlockBits)
	}
	if c.SetBits <= c.BlockBits || c.SetBits > 28 {
		return fmt.Errorf("fac: SetBits %d must be in (BlockBits, 28]", c.SetBits)
	}
	return nil
}

// Result is the outcome of one prediction.
type Result struct {
	// Predicted is the speculative effective address presented to the
	// cache. Meaningful whether or not the prediction verified: the cache
	// is accessed with this address during the speculative cycle.
	Predicted uint32
	// OK reports that the verification circuit confirmed the prediction
	// (equivalently: Predicted equals the architectural effective address).
	OK bool
	// Failure carries the individual failure signals when !OK.
	Failure Failure
}

// Predict models one pass through the prediction and verification circuits.
// base is the base register value, ofs the (sign-extended) offset value, and
// isRegOffset distinguishes register+register addressing, whose offsets
// arrive too late for negative-offset handling. Post-increment addressing
// presents ofs == 0 (the access uses the base directly).
//
// Invariant: Result.OK implies Result.Predicted == base+ofs (mod 2^32).
func (c Config) Predict(base, ofs uint32, isRegOffset bool) Result {
	bm := uint32(1)<<c.BlockBits - 1 // block-offset mask
	sm := uint32(1)<<c.SetBits - 1   // block offset + index mask

	lowSum := (base & bm) + (ofs & bm)
	blockOfs := lowSum & bm
	carryOut := lowSum >> c.BlockBits

	negative := ofs&0x80000000 != 0
	if negative && isRegOffset {
		// The conservative path: the prediction presented the raw OR'd
		// address and is abandoned.
		return Result{
			Predicted: (base|ofs)&^bm | blockOfs,
			Failure:   FailNegIndexReg,
		}
	}
	if negative {
		// Negative constant offset: the index (and tag) bits of the
		// sign-extended offset are all ones and are inverted to zero, so the
		// predicted address is the base's block with the adjusted block
		// offset. It verifies only when the access stays within the base's
		// cache block: the low-field add must produce a carry (no borrow).
		var fail Failure
		if ofs>>c.BlockBits != (1<<(32-c.BlockBits))-1 {
			fail |= FailLargeNegConst
		}
		if carryOut == 0 {
			fail |= FailOverflow
		}
		return Result{
			Predicted: base&^bm | blockOfs,
			OK:        fail == 0,
			Failure:   fail,
		}
	}

	// Non-negative offset: carry-free (OR) addition in the index field and,
	// without the tag adder, in the tag field as well.
	var fail Failure
	if carryOut != 0 {
		fail |= FailOverflow
	}
	conflicts := base & ofs // per-bit carry generates
	idxConflicts := conflicts & sm &^ bm
	tagConflicts := conflicts &^ sm
	if idxConflicts != 0 {
		fail |= FailGenCarry
	}
	var predicted uint32
	if c.TagAdder {
		// The tag adder computes base+ofs in the tag field with no carry-in;
		// that is exact whenever the index field neither generates nor
		// receives a carry, which the other two signals already guarantee.
		tag := (base >> c.SetBits) + (ofs >> c.SetBits)
		predicted = tag<<c.SetBits | (base|ofs)&sm&^bm | blockOfs
	} else {
		if tagConflicts != 0 {
			fail |= FailGenCarry
		}
		predicted = (base|ofs)&^bm | blockOfs
	}
	return Result{Predicted: predicted, OK: fail == 0, Failure: fail}
}

// Index extracts the set-index field of an address under this geometry.
func (c Config) Index(addr uint32) uint32 {
	return addr >> c.BlockBits & (1<<(c.SetBits-c.BlockBits) - 1)
}

// BlockOffset extracts the block-offset field of an address.
func (c Config) BlockOffset(addr uint32) uint32 {
	return addr & (1<<c.BlockBits - 1)
}

// Tag extracts the tag field of an address.
func (c Config) Tag(addr uint32) uint32 { return addr >> c.SetBits }
