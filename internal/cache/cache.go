// Package cache models the first-level instruction and data caches of the
// paper's baseline machine (Table 5): direct-mapped or set-associative,
// write-back write-allocate, non-blocking with a bounded number of
// outstanding misses. The model tracks tag state and per-line fill times;
// port scheduling (two reads or one store per cycle) is the pipeline's job.
package cache

import (
	"fmt"

	"repro/internal/obs"
)

// Config describes one cache.
type Config struct {
	Size        int // total bytes
	BlockSize   int // bytes per block
	Assoc       int // ways; 1 = direct-mapped
	MissLatency int // cycles to fill a block from the next level
	MSHRs       int // max outstanding misses; 0 = unlimited
}

// Validate checks geometry.
func (c Config) Validate() error {
	switch {
	case c.Size <= 0 || c.BlockSize <= 0 || c.Assoc <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.BlockSize&(c.BlockSize-1) != 0:
		return fmt.Errorf("cache: block size %d not a power of two", c.BlockSize)
	case c.Size%(c.BlockSize*c.Assoc) != 0:
		return fmt.Errorf("cache: size %d not divisible by block*assoc", c.Size)
	case (c.Size/(c.BlockSize*c.Assoc))&(c.Size/(c.BlockSize*c.Assoc)-1) != 0:
		return fmt.Errorf("cache: set count not a power of two")
	}
	return nil
}

// Stats accumulates access counts.
type Stats struct {
	Accesses    uint64
	Misses      uint64
	DelayedHits uint64 // hits on a block still being filled
	Evictions   uint64
	Writebacks  uint64
	// MSHROcc samples the number of outstanding misses at each miss
	// (after allocation), i.e. the occupancy the new miss observes.
	// Only populated when the cache bounds outstanding misses.
	MSHROcc obs.Hist
}

// MissRatio returns misses/accesses.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

type line struct {
	valid bool
	dirty bool
	tag   uint32
	ready uint64 // cycle the fill completes (<= now means resident)
	lru   uint64 // last-touch cycle for replacement
}

// Cache is a timing model of one cache array.
type Cache struct {
	cfg       Config
	sets      [][]line
	idxMask   uint32
	blockBits uint
	idxBits   uint
	stats     Stats

	outstanding []uint64 // ready cycles of in-flight misses (MSHR tracking)

	sink obs.Sink // nil = no event stream (the common, free case)
}

// New builds a cache; it panics on invalid geometry (configuration is a
// programming error, not an input condition).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nsets := cfg.Size / (cfg.BlockSize * cfg.Assoc)
	c := &Cache{cfg: cfg, sets: make([][]line, nsets)}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	c.blockBits = log2(uint(cfg.BlockSize))
	c.idxBits = log2(uint(nsets))
	c.idxMask = uint32(nsets - 1)
	return c
}

func log2(v uint) uint {
	n := uint(0)
	for 1<<n < v {
		n++
	}
	return n
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// SetSink attaches an event sink (nil detaches). Every Access emits one
// KindCacheAccess event; emission is free when no sink is attached.
func (c *Cache) SetSink(s obs.Sink) { c.sink = s }

// Result describes the outcome of one access.
type Result struct {
	// Ready is the cycle at which the data is available (== the access
	// cycle on a hit). When MSHRFull is set it is instead the earliest
	// cycle at which the access can be retried.
	Ready      uint64
	Hit        bool
	DelayedHit bool
	MSHRFull   bool
}

func (c *Cache) lookup(addr uint32) (set []line, tag uint32) {
	idx := addr >> c.blockBits & c.idxMask
	return c.sets[idx], addr >> (c.blockBits + c.idxBits)
}

// pruneMSHRs drops completed misses from the outstanding list.
func (c *Cache) pruneMSHRs(now uint64) {
	keep := c.outstanding[:0]
	for _, r := range c.outstanding {
		if r > now {
			keep = append(keep, r)
		}
	}
	c.outstanding = keep
}

// Access performs a read or write at addr during cycle now and returns its
// timing outcome. Writes mark the block dirty (write-allocate on miss).
func (c *Cache) Access(addr uint32, write bool, now uint64) Result {
	c.stats.Accesses++
	set, tag := c.lookup(addr)

	// Hit (possibly on an in-flight fill)?
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag {
			l.lru = now
			if write {
				l.dirty = true
			}
			if l.ready > now {
				c.stats.DelayedHits++
				if c.sink != nil {
					c.emit(addr, write, now, l.ready, obs.FlagDelayedHit)
				}
				return Result{Ready: l.ready, DelayedHit: true}
			}
			if c.sink != nil {
				c.emit(addr, write, now, now, obs.FlagHit)
			}
			return Result{Ready: now, Hit: true}
		}
	}

	// Miss. Check MSHR availability.
	if c.cfg.MSHRs > 0 {
		c.pruneMSHRs(now)
		if len(c.outstanding) >= c.cfg.MSHRs {
			earliest := c.outstanding[0]
			for _, r := range c.outstanding[1:] {
				if r < earliest {
					earliest = r
				}
			}
			c.stats.Accesses-- // the access did not happen; it must retry
			if c.sink != nil {
				c.emit(addr, write, now, earliest, obs.FlagMSHRFull)
			}
			return Result{Ready: earliest, MSHRFull: true}
		}
	}
	c.stats.Misses++

	// Choose a victim: invalid first, else LRU.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		c.stats.Evictions++
		if v.dirty {
			c.stats.Writebacks++
		}
	}
	ready := now + uint64(c.cfg.MissLatency)
	*v = line{valid: true, dirty: write, tag: tag, ready: ready, lru: now}
	if c.cfg.MSHRs > 0 {
		c.outstanding = append(c.outstanding, ready)
		c.stats.MSHROcc.Add(uint64(len(c.outstanding)))
	}
	if c.sink != nil {
		c.emit(addr, write, now, ready, 0)
	}
	return Result{Ready: ready}
}

// emit sends one cache-access event; callers guard on c.sink != nil so
// the event value never materializes on the disabled path.
func (c *Cache) emit(addr uint32, write bool, now, ready uint64, flags obs.Flags) {
	if write {
		flags |= obs.FlagStore
	}
	c.sink.Event(obs.Event{Kind: obs.KindCacheAccess, Flags: flags, Cycle: now, Addr: addr, Val: ready})
}

// Probe reports whether addr currently hits (resident and filled) without
// changing any state. Used by tests and by store-buffer policies.
func (c *Cache) Probe(addr uint32, now uint64) bool {
	set, tag := c.lookup(addr)
	for i := range set {
		l := &set[i]
		if l.valid && l.tag == tag && l.ready <= now {
			return true
		}
	}
	return false
}

// Flush invalidates all lines and clears statistics.
func (c *Cache) Flush() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{}
		}
	}
	c.stats = Stats{}
	c.outstanding = nil
}
