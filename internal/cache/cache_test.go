package cache

import (
	"math/rand"

	"repro/internal/obs"
	"testing"
)

func dm16k(missLat, mshrs int) *Cache {
	return New(Config{Size: 16 << 10, BlockSize: 32, Assoc: 1, MissLatency: missLat, MSHRs: mshrs})
}

func TestValidate(t *testing.T) {
	good := Config{Size: 16 << 10, BlockSize: 32, Assoc: 1, MissLatency: 16}
	if err := good.Validate(); err != nil {
		t.Errorf("good config invalid: %v", err)
	}
	bad := []Config{
		{Size: 0, BlockSize: 32, Assoc: 1},
		{Size: 16 << 10, BlockSize: 33, Assoc: 1},
		{Size: 16 << 10, BlockSize: 32, Assoc: 0},
		{Size: 48 << 10, BlockSize: 32, Assoc: 1}, // 1536 sets, not pow2
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) passed", c)
		}
	}
}

func TestMissThenHit(t *testing.T) {
	c := dm16k(16, 0)
	r := c.Access(0x1000, false, 100)
	if r.Hit || r.Ready != 116 {
		t.Errorf("first access = %+v, want miss ready at 116", r)
	}
	// Access to another word in the same block while the fill is in flight.
	r = c.Access(0x101C, false, 101)
	if !r.DelayedHit || r.Ready != 116 {
		t.Errorf("delayed hit = %+v", r)
	}
	// After the fill completes it is a plain hit.
	r = c.Access(0x1000, false, 120)
	if !r.Hit || r.Ready != 120 {
		t.Errorf("post-fill access = %+v", r)
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Misses != 1 || s.DelayedHits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestConflictEvictionAndWriteback(t *testing.T) {
	c := dm16k(16, 0)
	// Two addresses that map to the same set in a 16KB DM cache.
	a, b := uint32(0x1000), uint32(0x1000+16<<10)
	c.Access(a, true, 0) // write-allocate, dirty
	c.Access(b, false, 100)
	s := c.Stats()
	if s.Evictions != 1 || s.Writebacks != 1 {
		t.Errorf("stats = %+v, want 1 eviction with writeback", s)
	}
	// A clean eviction does not write back.
	c.Access(a, false, 200)
	if s := c.Stats(); s.Writebacks != 1 {
		t.Errorf("clean eviction wrote back: %+v", s)
	}
}

func TestSetAssociativeLRU(t *testing.T) {
	c := New(Config{Size: 4 << 10, BlockSize: 32, Assoc: 2, MissLatency: 10})
	stride := uint32(2 << 10) // set-conflicting stride for 2-way 4KB
	c.Access(0x0000, false, 0)
	c.Access(stride, false, 1)
	// Both resident (2 ways). Touch the first to make the second LRU.
	if r := c.Access(0x0000, false, 20); !r.Hit {
		t.Error("way 0 evicted prematurely")
	}
	c.Access(2*stride, false, 21) // evicts 'stride'
	if r := c.Access(0x0000, false, 40); !r.Hit {
		t.Error("LRU evicted the wrong way")
	}
	if r := c.Access(stride, false, 41); r.Hit {
		t.Error("expected stride to have been evicted")
	}
}

func TestMSHRLimit(t *testing.T) {
	c := dm16k(16, 2)
	c.Access(0x0000, false, 0)
	c.Access(0x4000, false, 0)
	r := c.Access(0x8000, false, 1)
	if !r.MSHRFull {
		t.Fatalf("third concurrent miss not blocked: %+v", r)
	}
	if r.Ready != 16 {
		t.Errorf("retry cycle = %d, want 16 (earliest fill)", r.Ready)
	}
	// After the first fill completes, the miss can proceed.
	r = c.Access(0x8000, false, 17)
	if r.MSHRFull {
		t.Error("MSHR still full after fills completed")
	}
	// Blocked accesses are not counted.
	if s := c.Stats(); s.Accesses != 3 || s.Misses != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestProbe(t *testing.T) {
	c := dm16k(16, 0)
	if c.Probe(0x1000, 0) {
		t.Error("probe hit in empty cache")
	}
	c.Access(0x1000, false, 0)
	if c.Probe(0x1000, 5) {
		t.Error("probe hit while fill in flight")
	}
	if !c.Probe(0x1000, 16) {
		t.Error("probe miss after fill")
	}
}

func TestFlush(t *testing.T) {
	c := dm16k(16, 4)
	c.Access(0x1000, true, 0)
	c.Flush()
	if s := c.Stats(); s.Accesses != 0 {
		t.Errorf("stats after flush = %+v", s)
	}
	if c.Probe(0x1000, 100) {
		t.Error("line survived flush")
	}
}

func TestMissRatio(t *testing.T) {
	c := dm16k(1, 0)
	for i := 0; i < 10; i++ {
		c.Access(uint32(i*32), false, uint64(i*10))
	}
	for i := 0; i < 30; i++ {
		c.Access(uint32(i%10*32), false, uint64(1000+i*10))
	}
	got := c.Stats().MissRatio()
	if got != 0.25 { // 10 misses / 40 accesses
		t.Errorf("miss ratio = %v, want 0.25", got)
	}
	if (Stats{}).MissRatio() != 0 {
		t.Error("empty miss ratio not 0")
	}
}

// Property: the same block never misses twice in a row without an
// intervening eviction of its set.
func TestTemporalLocalityProperty(t *testing.T) {
	c := dm16k(16, 0)
	r := rand.New(rand.NewSource(7))
	now := uint64(0)
	for i := 0; i < 20000; i++ {
		addr := uint32(r.Intn(64)) * 32 // working set fits easily
		now += uint64(r.Intn(3))
		res := c.Access(addr, r.Intn(2) == 0, now)
		if i >= 2000 && !res.Hit && !res.DelayedHit {
			// After warmup everything in a 2KB working set must hit in 16KB.
			t.Fatalf("unexpected miss at %#x after warmup (i=%d)", addr, i)
		}
		if res.Ready < now {
			t.Fatal("ready before access cycle")
		}
	}
}

// eventLog records every cache event for flag inspection.
type eventLog struct{ events []obs.Event }

func (l *eventLog) Event(e obs.Event) { l.events = append(l.events, e) }

func TestEventEmission(t *testing.T) {
	c := New(Config{Size: 16 << 10, BlockSize: 32, Assoc: 1, MissLatency: 16, MSHRs: 1})
	log := &eventLog{}
	c.SetSink(log)

	c.Access(0x1000, false, 0)  // miss
	c.Access(0x101C, false, 1)  // delayed hit on the in-flight fill
	c.Access(0x2000, true, 2)   // second miss bounces: MSHR full
	c.Access(0x1000, false, 20) // plain hit after the fill
	c.Access(0x2000, true, 21)  // store miss

	want := []struct {
		flags obs.Flags
		ready uint64
	}{
		{0, 16},
		{obs.FlagDelayedHit, 16},
		{obs.FlagMSHRFull | obs.FlagStore, 16},
		{obs.FlagHit, 20},
		{obs.FlagStore, 37},
	}
	if len(log.events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(log.events), len(want), log.events)
	}
	for i, w := range want {
		e := log.events[i]
		if e.Kind != obs.KindCacheAccess || e.Flags != w.flags || e.Val != w.ready {
			t.Errorf("event %d = %+v, want flags=%v ready=%d", i, e, w.flags, w.ready)
		}
	}
	// The stats and event stream agree: one event per accounted access
	// plus one per MSHR bounce.
	s := c.Stats()
	if got := s.Accesses + 1; got != uint64(len(log.events)) {
		t.Errorf("accesses+bounces %d != events %d", got, len(log.events))
	}

	// Detaching the sink stops emission without touching stats.
	c.SetSink(nil)
	c.Access(0x1000, false, 40)
	if len(log.events) != len(want) {
		t.Error("event emitted after SetSink(nil)")
	}
}

func TestMSHROccupancyHistogram(t *testing.T) {
	c := New(Config{Size: 16 << 10, BlockSize: 32, Assoc: 4, MissLatency: 100, MSHRs: 4})
	// Three concurrent misses to distinct blocks: occupancy samples 1, 2, 3.
	c.Access(0x1000, false, 0)
	c.Access(0x2000, false, 1)
	c.Access(0x3000, false, 2)
	h := c.Stats().MSHROcc
	if h.Count != 3 || h.Max != 3 {
		t.Fatalf("occupancy hist count=%d max=%d, want 3/3", h.Count, h.Max)
	}
	if h.Buckets[1] != 1 || h.Buckets[2] != 1 || h.Buckets[3] != 1 {
		t.Fatalf("occupancy buckets %v", h.Buckets)
	}

	// An unbounded cache never samples occupancy.
	u := dm16k(16, 0)
	u.Access(0x1000, false, 0)
	if u.Stats().MSHROcc.Count != 0 {
		t.Error("unbounded cache sampled MSHR occupancy")
	}
}
