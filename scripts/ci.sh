#!/bin/sh
# ci.sh — the repo's tier-1 verification gate (see ROADMAP.md).
# Run from anywhere; exits non-zero on the first failure.
#
# Expected runtime on a stock 4-core container: ~7 minutes total —
#   gofmt/lint/vet/build      ~30s  (lint is the repo's own analyzer,
#                                    scripts/lint: map-iteration-order
#                                    determinism in the emitting packages)
#   go test ./...             ~60s  (dominated by internal/experiments)
#   go test -race -short      ~4m   (full suite under the race detector;
#                                    -short trims the experiment sweeps and
#                                    difftest seed counts, which -race would
#                                    otherwise stretch past 15 minutes)
#   fuzz smoke                ~40s  (4 targets x 5s plus instrumented builds)
#   faclint smoke             ~10s  (static FAC-predictability analysis over
#                                    the 19-benchmark suite must classify at
#                                    least 68% of all load/store sites — the
#                                    suite currently sits at 68.8%, so any
#                                    precision regression trips the gate —
#                                    plus an -explain-first blame-chain probe)
#   predictor grid smoke       ~5s  (scripts/predsmoke: two small workloads
#                                    under the baseline and every predictor-
#                                    zoo machine; the exported RunRecord
#                                    report must be byte-identical to the
#                                    committed golden)
#   facd smoke                ~15s  (boot the simulation daemon on an
#                                    ephemeral port, run a tiny batch, verify
#                                    the RunRecord report and the cache-served
#                                    resubmission, probe the multi-tenant
#                                    hardening surface — 401/429/413/404 —
#                                    SIGTERM, assert clean drain)
#   facload smoke             ~15s  (cmd/facload: 3-tenant overload soak with
#                                    a mid-soak SIGTERM; asserts weighted-fair
#                                    scheduling, bounded p99 queue wait, and
#                                    the drop-free drain accounting identity)
#   fleet smoke               ~20s  (cmd/facload -fleet: coordinator + 2
#                                    worker daemons, one SIGKILLed mid-batch;
#                                    asserts zero lost jobs, work on every
#                                    shard, report bytes identical to a
#                                    stand-alone daemon, and the coordinator's
#                                    own SIGTERM drain identity)
#   bench smoke               ~20s  (one BenchmarkPipeline iteration with
#                                    BENCH_OUT redirected to a scratch file;
#                                    scripts/benchsmoke checks the report
#                                    schema, exact simulated-timing match vs
#                                    the committed BENCH_pipeline.json, and
#                                    <=20% throughput regression)
#
# The fuzz smoke stage runs each differential fuzz target briefly against
# its committed seed corpus plus a few seconds of mutation, so a crasher
# that slips past the deterministic tests still trips CI. For real hunting
# sessions use longer budgets (see docs/TESTING.md).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== repo lint =="
go run ./scripts/lint

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (short) =="
go test -race -short ./...

echo "== fuzz smoke =="
for target in FuzzFACPredict FuzzEncodeDecode FuzzAsmRoundtrip FuzzEmuVsPipeline; do
    echo "-- $target"
    go test ./internal/difftest/ -run '^$' -fuzz "^${target}\$" -fuzztime 5s
done

echo "== faclint smoke =="
verdicts=$(go run ./cmd/faclint -suite -min-classified 0.68)
if [ -z "$verdicts" ]; then
    echo "faclint produced no verdicts" >&2
    exit 1
fi
blame=$(go run ./cmd/faclint -benchmark queens -explain-first)
case "$blame" in
*"verdict=unknown"*) ;;
*)
    echo "faclint -explain-first produced no blame chain:" >&2
    echo "$blame" >&2
    exit 1
    ;;
esac

echo "== predictor grid smoke =="
go run ./scripts/predsmoke

echo "== facd smoke =="
go run ./scripts/facdsmoke

echo "== facload smoke =="
go run ./cmd/facload -tenants 3 -duration 5s

echo "== fleet smoke =="
go run ./cmd/facload -fleet

echo "== bench smoke =="
bench_out=$(mktemp)
trap 'rm -f "$bench_out"' EXIT
BENCH_OUT="$bench_out" go test -run '^$' -bench '^BenchmarkPipeline$' -benchtime 1x .
go run ./scripts/benchsmoke -ref BENCH_pipeline.json -new "$bench_out"

echo "CI OK"
