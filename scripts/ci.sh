#!/bin/sh
# ci.sh — the repo's tier-1 verification gate (see ROADMAP.md).
# Run from anywhere; exits non-zero on the first failure.
#
# Expected runtime on a stock 4-core container: ~7 minutes total —
#   gofmt/vet/build           ~20s
#   go test ./...             ~60s  (dominated by internal/experiments)
#   go test -race -short      ~4m   (full suite under the race detector;
#                                    -short trims the experiment sweeps and
#                                    difftest seed counts, which -race would
#                                    otherwise stretch past 15 minutes)
#   fuzz smoke                ~40s  (4 targets x 5s plus instrumented builds)
#   facd smoke                ~15s  (boot the simulation daemon on an
#                                    ephemeral port, run a tiny batch, verify
#                                    the RunRecord report and the cache-served
#                                    resubmission, SIGTERM, assert clean drain)
#
# The fuzz smoke stage runs each differential fuzz target briefly against
# its committed seed corpus plus a few seconds of mutation, so a crasher
# that slips past the deterministic tests still trips CI. For real hunting
# sessions use longer budgets (see docs/TESTING.md).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (short) =="
go test -race -short ./...

echo "== fuzz smoke =="
for target in FuzzFACPredict FuzzEncodeDecode FuzzAsmRoundtrip FuzzEmuVsPipeline; do
    echo "-- $target"
    go test ./internal/difftest/ -run '^$' -fuzz "^${target}\$" -fuzztime 5s
done

echo "== facd smoke =="
go run ./scripts/facdsmoke

echo "CI OK"
