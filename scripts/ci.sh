#!/bin/sh
# ci.sh — the repo's tier-1 verification gate (see ROADMAP.md).
# Run from anywhere; exits non-zero on the first failure.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "CI OK"
