// Command lint is the repo's own vet-style static analyzer (stdlib go/ast +
// go/types only, no external dependencies). It enforces three rules, all
// born from real bugs in this codebase:
//
//  1. Range-over-map order dependence: a `for ... range m` over a map whose
//     body appends to a slice or emits output (calls named append, Write*,
//     Print*, Fprint*, Emit*/emit*, print*) produces results that depend on
//     Go's randomized map iteration order. Code generation, assembly,
//     linking, and experiment export must be byte-deterministic, so such
//     loops must iterate a sorted copy instead. A loop that is deliberately
//     order-independent downstream is suppressed with the marker comment
//     //lint:sorted on the `for` line or the line directly above it.
//
//  2. Hot-path allocations: a file whose first comment is //lint:hotpath
//     declares that its steady state must not allocate (the simulator's
//     cycle loop; TestSteadyStateZeroAllocs enforces the dynamic side).
//     In such files every `append` call, map composite literal, and
//     `make(map...)` call is flagged — the hot structures are fixed-size
//     rings sized once at setup, so growth idioms are regressions.
//     Deliberate setup-time or error-path allocations are suppressed with
//     //lint:alloc-ok on the same line or the line above.
//
//  3. Magic schema/verdict strings: report schemas ("fac/static/v1",
//     "fac/report/v1", ...) and verdict names ("proven_predictable",
//     "proven_failing") are wire-format contracts checked byte-for-byte by
//     golden files and downstream consumers. A raw string literal spelling
//     one of them anywhere outside a const declaration is a typo waiting
//     to fork the format, so it must reference the exported constant
//     (staticfac.ReportSchema, staticfac.VerdictNamePredictable, ...)
//     instead. Struct tags are exempt (encoding/json needs the literal);
//     a deliberate duplicate — say, a doc example — is suppressed with
//     //lint:schemaok on the line or the line above.
//
// Usage: go run ./scripts/lint [package-dir ...]
// Without arguments it lints the packages where emission order matters
// (internal/minic, internal/asm, internal/prog, internal/experiments),
// the hot-path-marked simulator core (internal/pipeline), and the
// schema-bearing packages (internal/staticfac, internal/obs).
package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// defaultTargets are the packages whose output must not depend on map
// iteration order: the compiler, the assembler, the linker, and the
// experiment harness.
var defaultTargets = []string{
	"internal/minic",
	"internal/asm",
	"internal/prog",
	"internal/experiments",
	"internal/pipeline",
	"internal/predict",
	"internal/staticfac",
	"internal/obs",
}

func main() {
	root, err := repoRoot()
	if err != nil {
		fatal(err)
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		fatal(err)
	}
	targets := os.Args[1:]
	if len(targets) == 0 {
		targets = defaultTargets
	}
	l := newLinter(root, mod)
	var findings []string
	for _, dir := range targets {
		fs, err := l.lintDir(dir)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", dir, err))
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above working directory")
		}
		dir = parent
	}
}

// modulePath reads the module line of a go.mod.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}

// linter type-checks packages from source. Module-internal imports resolve
// against the repository tree; everything else (the standard library) goes
// through the stock source importer.
type linter struct {
	root  string
	mod   string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*types.Package
}

func newLinter(root, mod string) *linter {
	fset := token.NewFileSet()
	return &linter{
		root:  root,
		mod:   mod,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: map[string]*types.Package{},
	}
}

// Import implements types.Importer over both namespaces.
func (l *linter) Import(path string) (*types.Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if rel, ok := strings.CutPrefix(path, l.mod+"/"); ok {
		pkg, _, _, err := l.check(filepath.Join(l.root, rel), path)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.std.Import(path)
}

// check parses and type-checks the non-test files of one package directory.
func (l *linter) check(dir, importPath string) (*types.Package, []*ast.File, *types.Info, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	cfg := types.Config{Importer: l}
	pkg, err := cfg.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return pkg, files, info, nil
}

// lintDir type-checks one package directory (relative to the repo root)
// and returns its findings sorted by position.
func (l *linter) lintDir(dir string) ([]string, error) {
	abs := dir
	if !filepath.IsAbs(abs) {
		abs = filepath.Join(l.root, dir)
	}
	importPath := l.mod + "/" + filepath.ToSlash(dir)
	_, files, info, err := l.check(abs, importPath)
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, f := range files {
		if hasHotpathMarker(f) {
			findings = append(findings, l.lintHotpath(f, info)...)
		}
		findings = append(findings, l.lintSchemaStrings(f)...)
		sorted := markerLines(l.fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rs.X]
			if !ok {
				return true
			}
			if _, ok := tv.Type.Underlying().(*types.Map); !ok {
				return true
			}
			pos := l.fset.Position(rs.For)
			if sorted[pos.Line] || sorted[pos.Line-1] {
				return true
			}
			if reason := orderDependent(rs.Body, info); reason != "" {
				rel, err := filepath.Rel(l.root, pos.Filename)
				if err != nil {
					rel = pos.Filename
				}
				findings = append(findings, fmt.Sprintf(
					"%s:%d: range over map %s %s in map order (iteration order is randomized; iterate a sorted copy or mark //lint:sorted)",
					filepath.ToSlash(rel), pos.Line, exprString(rs.X), reason))
			}
			return true
		})
	}
	sort.Strings(findings)
	return findings, nil
}

// hasHotpathMarker reports whether the file opts into the hot-path
// allocation rule with a //lint:hotpath comment.
func hasHotpathMarker(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == "lint:hotpath" {
				return true
			}
		}
	}
	return false
}

// commentLines returns the file lines carrying the given //lint:... marker.
func commentLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == marker {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// allocOKLines returns the file lines carrying a //lint:alloc-ok marker,
// which suppresses the hot-path allocation rule on that line or the next.
func allocOKLines(fset *token.FileSet, f *ast.File) map[int]bool {
	return commentLines(fset, f, "lint:alloc-ok")
}

// lintHotpath flags allocation-prone patterns in a //lint:hotpath file:
// append calls (unbounded growth — hot structures must be fixed rings),
// map composite literals, and make(map...) calls.
func (l *linter) lintHotpath(f *ast.File, info *types.Info) []string {
	okLines := allocOKLines(l.fset, f)
	var findings []string
	report := func(pos token.Pos, what string) {
		p := l.fset.Position(pos)
		if okLines[p.Line] || okLines[p.Line-1] {
			return
		}
		rel, err := filepath.Rel(l.root, p.Filename)
		if err != nil {
			rel = p.Filename
		}
		findings = append(findings, fmt.Sprintf(
			"%s:%d: %s in //lint:hotpath file (use a preallocated ring/buffer, or mark //lint:alloc-ok for setup code)",
			filepath.ToSlash(rel), p.Line, what))
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "append":
						report(n.Pos(), "append")
					case "make":
						if len(n.Args) > 0 {
							if tv, ok := info.Types[n.Args[0]]; ok {
								if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
									report(n.Pos(), "make(map)")
								}
							}
						}
					}
				}
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(n.Pos(), "map literal")
				}
			}
		}
		return true
	})
	return findings
}

// schemaPattern matches report-schema identifiers like "fac/static/v1".
var schemaPattern = regexp.MustCompile(`^fac/[a-z-]+/v[0-9]+$`)

// verdictNames are the wire-format verdict strings; "unknown" is excluded
// because it doubles as the generic fallback of many String methods.
var verdictNames = map[string]bool{
	"proven_predictable": true,
	"proven_failing":     true,
}

// lintSchemaStrings flags raw string literals that spell a schema
// identifier or a verdict name outside a const declaration. Struct tags
// are exempt, and //lint:schemaok on the literal's line (or the line
// above) suppresses the finding.
func (l *linter) lintSchemaStrings(f *ast.File) []string {
	okLines := commentLines(l.fset, f, "lint:schemaok")

	// Collect source ranges the rule does not apply to: const
	// declarations (the canonical definitions live there) and struct
	// field tags (encoding/json needs the literal).
	type span struct{ lo, hi token.Pos }
	var exempt []span
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GenDecl:
			if n.Tok == token.CONST {
				exempt = append(exempt, span{n.Pos(), n.End()})
				return false
			}
		case *ast.Field:
			if n.Tag != nil {
				exempt = append(exempt, span{n.Tag.Pos(), n.Tag.End()})
			}
		}
		return true
	})
	exempted := func(p token.Pos) bool {
		for _, s := range exempt {
			if p >= s.lo && p < s.hi {
				return true
			}
		}
		return false
	}

	var findings []string
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || exempted(lit.Pos()) {
			return true
		}
		val, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if !schemaPattern.MatchString(val) && !verdictNames[val] {
			return true
		}
		p := l.fset.Position(lit.Pos())
		if okLines[p.Line] || okLines[p.Line-1] {
			return true
		}
		rel, err := filepath.Rel(l.root, p.Filename)
		if err != nil {
			rel = p.Filename
		}
		findings = append(findings, fmt.Sprintf(
			"%s:%d: raw schema/verdict string %q (reference the exported constant, or mark //lint:schemaok)",
			filepath.ToSlash(rel), p.Line, val))
		return true
	})
	return findings
}

// markerLines returns the file lines carrying a //lint:sorted marker. The
// marker suppresses a finding on its own line (trailing comment) or the
// line below it (marker on its own line above the loop).
func markerLines(fset *token.FileSet, f *ast.File) map[int]bool {
	return commentLines(fset, f, "lint:sorted")
}

// emitPrefixes are call-name prefixes that write output or build ordered
// collections: appending or emitting inside a map range leaks the random
// iteration order into the result.
var emitPrefixes = []string{"Write", "Print", "Fprint", "Emit", "emit", "print"}

// orderDependent reports why a map-range body is iteration-order dependent,
// or "" if no order-sensitive operation was found.
func orderDependent(body *ast.BlockStmt, info *types.Info) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "append" {
				reason = "appends to a slice"
				return false
			}
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		default:
			return true
		}
		for _, p := range emitPrefixes {
			if strings.HasPrefix(name, p) {
				reason = "calls " + name
				return false
			}
		}
		return true
	})
	return reason
}

// exprString renders the ranged expression compactly for the finding text.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	default:
		return "expression"
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lint:", err)
	os.Exit(1)
}
