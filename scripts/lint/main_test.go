package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSamplePackage checks all three rules against the fixture package:
// the two order-dependent loops, the three hot-path allocation idioms, and
// the two raw schema/verdict strings are found; the clean and
// marker-suppressed cases are not.
func TestSamplePackage(t *testing.T) {
	dir, err := filepath.Abs("testdata/sample")
	if err != nil {
		t.Fatal(err)
	}
	l := newLinter(dir, "sample.test/mod")
	findings, err := l.lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 7 {
		t.Fatalf("got %d findings, want 7:\n%s", len(findings), strings.Join(findings, "\n"))
	}
	all := strings.Join(findings, "\n")
	for _, want := range []string{
		"append", "map literal", "make(map)", "appends to a slice", "calls Println",
		`"fac/sample/v1"`, `"proven_failing"`,
	} {
		if !strings.Contains(all, want) {
			t.Errorf("no finding mentions %q:\n%s", want, all)
		}
	}
	if n := strings.Count(all, "schema/verdict"); n != 2 {
		t.Errorf("got %d schema/verdict findings, want 2 (const decl, struct tag, marker, and %q must stay exempt):\n%s",
			n, "unknown", all)
	}
	for _, f := range findings {
		if strings.Contains(f, "SortedKeys") || strings.Contains(f, ":47:") {
			t.Errorf("marker-suppressed loop was reported: %q", f)
		}
		if strings.Contains(f, "hotSetupOK") || strings.Contains(f, "hotSliceOK") {
			t.Errorf("suppressed or benign hot-path case was reported: %q", f)
		}
	}
}

// TestRepoTargets lints the real target packages: the tree must stay clean
// (CI runs the same check ahead of go vet).
func TestRepoTargets(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		t.Fatal(err)
	}
	l := newLinter(root, mod)
	for _, dir := range defaultTargets {
		findings, err := l.lintDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if len(findings) > 0 {
			t.Errorf("%s:\n%s", dir, strings.Join(findings, "\n"))
		}
	}
}
