package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestSamplePackage checks the rule against the fixture package: the two
// order-dependent loops are found, the clean and marker-suppressed loops
// are not.
func TestSamplePackage(t *testing.T) {
	dir, err := filepath.Abs("testdata/sample")
	if err != nil {
		t.Fatal(err)
	}
	l := newLinter(dir, "sample.test/mod")
	findings, err := l.lintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("got %d findings, want 2:\n%s", len(findings), strings.Join(findings, "\n"))
	}
	wants := []string{"appends to a slice", "calls Println"}
	for i, want := range wants {
		if !strings.Contains(findings[i], want) {
			t.Errorf("finding %d = %q, want it to mention %q", i, findings[i], want)
		}
	}
	for _, f := range findings {
		if strings.Contains(f, "SortedKeys") || strings.Contains(f, ":47:") {
			t.Errorf("marker-suppressed loop was reported: %q", f)
		}
	}
}

// TestRepoTargets lints the real target packages: the tree must stay clean
// (CI runs the same check ahead of go vet).
func TestRepoTargets(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		t.Fatal(err)
	}
	l := newLinter(root, mod)
	for _, dir := range defaultTargets {
		findings, err := l.lintDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if len(findings) > 0 {
			t.Errorf("%s:\n%s", dir, strings.Join(findings, "\n"))
		}
	}
}
