package sample

// Fixture for the schema/verdict string rule: the canonical const
// declarations and the struct tag are exempt, the marked duplicate is
// suppressed, and the two raw literals below must each be flagged.

const SampleSchema = "fac/sample/v1" // exempt: const declaration

type record struct {
	Predictable int `json:"proven_predictable"` // exempt: struct tag
}

func badSchema() string {
	return "fac/sample/v1" // flagged: raw schema string
}

func badVerdict() string {
	return "proven_failing" // flagged: raw verdict string
}

func okMarked() string {
	//lint:schemaok
	return "fac/sample/v1"
}

func okOther() string {
	return "unknown" // generic fallback string, not a verdict finding
}
