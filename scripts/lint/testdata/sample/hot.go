//lint:hotpath
package sample

// Fixture for the hot-path allocation rule: the three unmarked
// allocation idioms below must each be flagged; the marked one must not.

func hotAppend(xs []int) []int {
	return append(xs, 1) // flagged: append
}

func hotMapLit() map[string]int {
	return map[string]int{"a": 1} // flagged: map literal
}

func hotMakeMap() map[int]int {
	return make(map[int]int) // flagged: make(map)
}

func hotSetupOK() map[int]int {
	//lint:alloc-ok
	return make(map[int]int)
}

func hotSliceOK() []int {
	return make([]int, 8) // slice make is fine: sized once at setup
}
