// Package sample exercises the range-over-map rule: two positives (append
// and emission), two clean loops, and one suppressed by the marker.
package sample

import (
	"fmt"
	"sort"
)

// CollectValues appends in map order: finding.
func CollectValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// DumpKeys prints in map order: finding.
func DumpKeys(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

// Sum folds with a commutative operation: clean.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Invert writes into another map, which has no order: clean.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// SortedKeys collects keys and sorts them before use: suppressed.
func SortedKeys(m map[string]int) []string {
	var keys []string
	//lint:sorted
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
