// Command facdsmoke is the CI smoke test for the facd daemon: it builds
// facd, boots it on an ephemeral port with a fresh result cache and one
// authenticated tenant (via -clients-file) with deliberately tight
// limits, submits a tiny batch, verifies the returned RunRecord report,
// re-submits the batch to prove it is served from the persistent cache,
// reads the batch's SSE progress stream (fac/progress/v1), probes the
// multi-tenant hardening surface (unauthenticated request, over-quota
// burst, oversized body, malformed job id), rotates the tenant's token
// through a SIGHUP reload, then sends SIGTERM and asserts a clean drain
// (exit 0). Run from the repo root:
//
//	go run ./scripts/facdsmoke
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "facdsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("facdsmoke OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "facdsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "facd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/facd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build facd: %w", err)
	}

	// One authenticated tenant with a tight queue quota and body limit, so
	// the hardening probes below have deterministic trip points. The
	// tenant table comes from a file so the SIGHUP reload probe can rotate
	// the token live.
	clientsFile := filepath.Join(tmp, "clients.conf")
	if err := os.WriteFile(clientsFile, []byte("# facdsmoke tenants\nsmoke:smoketoken:1\n"), 0o644); err != nil {
		return err
	}
	daemon := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-cache", filepath.Join(tmp, "cache"),
		"-max-insts", "5000000",
		"-clients-file", clientsFile,
		"-max-queued-per-client", "2",
		"-max-body-bytes", "4096",
	)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		return err
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start facd: %w", err)
	}
	defer daemon.Process.Kill()

	// Collect stdout, handing the ready line to the main goroutine.
	ready := make(chan string, 1)
	scanDone := make(chan struct{})
	var outBuf bytes.Buffer
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			outBuf.WriteString(line + "\n")
			if addr, ok := strings.CutPrefix(line, "facd listening on "); ok {
				ready <- addr
			}
		}
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("facd never announced its address")
	}

	// do sends an authenticated request as the "smoke" tenant.
	do := func(method, url, body string) (*http.Response, error) {
		var rd *strings.Reader
		if body != "" {
			rd = strings.NewReader(body)
		} else {
			rd = strings.NewReader("")
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Authorization", "Bearer smoketoken")
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		return http.DefaultClient.Do(req)
	}

	batch := `{"jobs": [{"workload": "queens", "toolchain": "base", "machine": "base32"}]}`
	submit := func() (string, error) {
		resp, err := do("POST", base+"/v1/batches", batch)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		var sub struct {
			Batch string `json:"batch"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusAccepted {
			return "", fmt.Errorf("submit status %d: %s", resp.StatusCode, sub.Error)
		}
		return sub.Batch, nil
	}
	wait := func(id string) error {
		deadline := time.Now().Add(2 * time.Minute)
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("batch %s never finished", id)
			}
			resp, err := do("GET", base+"/v1/batches/"+id, "")
			if err != nil {
				return err
			}
			var st struct {
				Terminal bool `json:"terminal"`
				Done     int  `json:"done"`
				Total    int  `json:"total"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if st.Terminal {
				if st.Done != st.Total {
					return fmt.Errorf("batch %s: %d/%d jobs done", id, st.Done, st.Total)
				}
				return nil
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// First pass: a fresh simulation, reported as a canonical RunRecord.
	id, err := submit()
	if err != nil {
		return err
	}
	if err := wait(id); err != nil {
		return err
	}
	resp, err := do("GET", base+"/v1/batches/"+id+"/report", "")
	if err != nil {
		return err
	}
	var rep bytes.Buffer
	if _, err := rep.ReadFrom(resp.Body); err != nil {
		return err
	}
	resp.Body.Close()
	report, err := obs.DecodeReport(rep.Bytes())
	if err != nil {
		return fmt.Errorf("report does not decode: %w", err)
	}
	if len(report.Records) != 1 {
		return fmt.Errorf("report has %d records, want 1", len(report.Records))
	}
	rec := report.Records[0]
	if rec.Benchmark != "queens" || rec.Cycles == 0 || rec.IPC == 0 {
		return fmt.Errorf("degenerate record: %+v", rec)
	}

	// Second pass: same batch again, served from the persistent cache.
	id2, err := submit()
	if err != nil {
		return err
	}
	if err := wait(id2); err != nil {
		return err
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var metrics struct {
		Jobs struct {
			CacheHits uint64 `json:"cache_hits"`
		} `json:"jobs"`
	}
	err = json.NewDecoder(mresp.Body).Decode(&metrics)
	mresp.Body.Close()
	if err != nil {
		return err
	}
	if metrics.Jobs.CacheHits == 0 {
		return fmt.Errorf("resubmitted batch was not served from cache")
	}

	// SSE progress stream: subscribing to the finished batch must replay
	// its full fac/progress/v1 history — hello with the schema, the job's
	// cache-served completion, and the terminal batch summary — then end
	// the stream (so ReadAll returns).
	sresp, err := do("GET", base+"/v1/batches/"+id2+"/events", "")
	if err != nil {
		return err
	}
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		sresp.Body.Close()
		return fmt.Errorf("events content type %q, want text/event-stream", ct)
	}
	stream, err := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	if err != nil {
		return err
	}
	for _, want := range []string{
		"event: hello",
		obs.ProgressEventSchema,
		`"event":"done"`,
		`"cache_hit":true`,
		`"event":"batch"`,
	} {
		if !strings.Contains(string(stream), want) {
			return fmt.Errorf("progress stream missing %q:\n%s", want, stream)
		}
	}

	// Hardening probes: each abuse pattern must be refused with the right
	// status, and none of them may disturb the daemon (the clean drain
	// below is the proof).

	// Unauthenticated request: 401.
	resp2, err := http.Post(base+"/v1/batches", "application/json", strings.NewReader(batch))
	if err != nil {
		return err
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusUnauthorized {
		return fmt.Errorf("unauthenticated submit got %d, want 401", resp2.StatusCode)
	}

	// Over-quota burst: a 3-job batch cannot fit the tenant's 2-slot queue
	// quota, whatever the queue holds right now — 429 with Retry-After.
	job := `{"workload": "queens", "toolchain": "base", "machine": "base32"}`
	resp2, err = do("POST", base+"/v1/batches", `{"jobs": [`+job+`,`+job+`,`+job+`]}`)
	if err != nil {
		return err
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		return fmt.Errorf("over-quota burst got %d, want 429", resp2.StatusCode)
	}
	if resp2.Header.Get("Retry-After") == "" {
		return fmt.Errorf("over-quota 429 carries no Retry-After")
	}

	// Oversized body: past -max-body-bytes 4096 — 413.
	resp2, err = do("POST", base+"/v1/batches",
		`{"jobs": [{"workload": "`+strings.Repeat("a", 5000)+`", "toolchain": "base", "machine": "base32"}]}`)
	if err != nil {
		return err
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		return fmt.Errorf("oversized body got %d, want 413", resp2.StatusCode)
	}

	// Malformed job id: must be 404, not an alias of some real job.
	resp2, err = do("GET", base+"/v1/jobs/jxyz", "")
	if err != nil {
		return err
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		return fmt.Errorf("malformed job id got %d, want 404", resp2.StatusCode)
	}

	// SIGHUP reload: rotate the tenant's token in the clients file and
	// reload live. The old token must stop working, the new one must
	// work, and nothing restarts (the clean drain below is from the same
	// process).
	if err := os.WriteFile(clientsFile, []byte("smoke:rotatedtoken:1\n"), 0o644); err != nil {
		return err
	}
	if err := daemon.Process.Signal(syscall.SIGHUP); err != nil {
		return err
	}
	reloaded := false
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp2, err = do("POST", base+"/v1/batches", batch) // old token
		if err != nil {
			return err
		}
		resp2.Body.Close()
		if resp2.StatusCode == http.StatusUnauthorized {
			reloaded = true
			break
		}
		// A 202 here just means the submit raced ahead of the reload; the
		// accepted batch (queens, now cache-hot) drains cleanly below.
		time.Sleep(100 * time.Millisecond)
	}
	if !reloaded {
		return fmt.Errorf("old token still accepted 10s after SIGHUP reload")
	}
	req, err := http.NewRequest("POST", base+"/v1/batches", strings.NewReader(batch))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer rotatedtoken")
	req.Header.Set("Content-Type", "application/json")
	resp2, err = http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	var rotated struct {
		Batch string `json:"batch"`
	}
	err = json.NewDecoder(resp2.Body).Decode(&rotated)
	resp2.Body.Close()
	if err != nil {
		return err
	}
	if resp2.StatusCode != http.StatusAccepted {
		return fmt.Errorf("rotated token got %d, want 202", resp2.StatusCode)
	}

	// SIGTERM: the daemon must drain and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	// Wait for the scanner to reach EOF before calling Wait: Wait closes
	// the stdout pipe on process exit, which can drop the final drain
	// lines the scanner has not read yet. EOF also means outBuf is
	// complete and safe to read from this goroutine.
	select {
	case <-scanDone:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("facd did not exit after SIGTERM")
	}
	if err := daemon.Wait(); err != nil {
		return fmt.Errorf("facd exited uncleanly: %w\noutput:\n%s", err, outBuf.String())
	}
	if !strings.Contains(outBuf.String(), "facd drained cleanly") {
		return fmt.Errorf("missing clean-drain message; output:\n%s", outBuf.String())
	}
	return nil
}
