// Command facdsmoke is the CI smoke test for the facd daemon: it builds
// facd, boots it on an ephemeral port with a fresh result cache, submits
// a tiny batch, verifies the returned RunRecord report, re-submits the
// batch to prove it is served from the persistent cache, then sends
// SIGTERM and asserts a clean drain (exit 0). Run from the repo root:
//
//	go run ./scripts/facdsmoke
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "facdsmoke:", err)
		os.Exit(1)
	}
	fmt.Println("facdsmoke OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "facdsmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "facd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/facd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build facd: %w", err)
	}

	daemon := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-cache", filepath.Join(tmp, "cache"),
		"-max-insts", "5000000",
	)
	stdout, err := daemon.StdoutPipe()
	if err != nil {
		return err
	}
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start facd: %w", err)
	}
	defer daemon.Process.Kill()

	// Collect stdout, handing the ready line to the main goroutine.
	ready := make(chan string, 1)
	scanDone := make(chan struct{})
	var outBuf bytes.Buffer
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			outBuf.WriteString(line + "\n")
			if addr, ok := strings.CutPrefix(line, "facd listening on "); ok {
				ready <- addr
			}
		}
	}()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		return fmt.Errorf("facd never announced its address")
	}

	batch := `{"jobs": [{"workload": "queens", "toolchain": "base", "machine": "base32"}]}`
	submit := func() (string, error) {
		resp, err := http.Post(base+"/v1/batches", "application/json", strings.NewReader(batch))
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		var sub struct {
			Batch string `json:"batch"`
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusAccepted {
			return "", fmt.Errorf("submit status %d: %s", resp.StatusCode, sub.Error)
		}
		return sub.Batch, nil
	}
	wait := func(id string) error {
		deadline := time.Now().Add(2 * time.Minute)
		for {
			if time.Now().After(deadline) {
				return fmt.Errorf("batch %s never finished", id)
			}
			resp, err := http.Get(base + "/v1/batches/" + id)
			if err != nil {
				return err
			}
			var st struct {
				Terminal bool `json:"terminal"`
				Done     int  `json:"done"`
				Total    int  `json:"total"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if st.Terminal {
				if st.Done != st.Total {
					return fmt.Errorf("batch %s: %d/%d jobs done", id, st.Done, st.Total)
				}
				return nil
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	// First pass: a fresh simulation, reported as a canonical RunRecord.
	id, err := submit()
	if err != nil {
		return err
	}
	if err := wait(id); err != nil {
		return err
	}
	resp, err := http.Get(base + "/v1/batches/" + id + "/report")
	if err != nil {
		return err
	}
	var rep bytes.Buffer
	if _, err := rep.ReadFrom(resp.Body); err != nil {
		return err
	}
	resp.Body.Close()
	report, err := obs.DecodeReport(rep.Bytes())
	if err != nil {
		return fmt.Errorf("report does not decode: %w", err)
	}
	if len(report.Records) != 1 {
		return fmt.Errorf("report has %d records, want 1", len(report.Records))
	}
	rec := report.Records[0]
	if rec.Benchmark != "queens" || rec.Cycles == 0 || rec.IPC == 0 {
		return fmt.Errorf("degenerate record: %+v", rec)
	}

	// Second pass: same batch again, served from the persistent cache.
	id2, err := submit()
	if err != nil {
		return err
	}
	if err := wait(id2); err != nil {
		return err
	}
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	var metrics struct {
		Jobs struct {
			CacheHits uint64 `json:"cache_hits"`
		} `json:"jobs"`
	}
	err = json.NewDecoder(mresp.Body).Decode(&metrics)
	mresp.Body.Close()
	if err != nil {
		return err
	}
	if metrics.Jobs.CacheHits == 0 {
		return fmt.Errorf("resubmitted batch was not served from cache")
	}

	// SIGTERM: the daemon must drain and exit 0.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	// Wait for the scanner to reach EOF before calling Wait: Wait closes
	// the stdout pipe on process exit, which can drop the final drain
	// lines the scanner has not read yet. EOF also means outBuf is
	// complete and safe to read from this goroutine.
	select {
	case <-scanDone:
	case <-time.After(30 * time.Second):
		return fmt.Errorf("facd did not exit after SIGTERM")
	}
	if err := daemon.Wait(); err != nil {
		return fmt.Errorf("facd exited uncleanly: %w\noutput:\n%s", err, outBuf.String())
	}
	if !strings.Contains(outBuf.String(), "facd drained cleanly") {
		return fmt.Errorf("missing clean-drain message; output:\n%s", outBuf.String())
	}
	return nil
}
