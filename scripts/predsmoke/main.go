// Command predsmoke is the CI gate for the predictor zoo: it runs two
// small workloads under the baseline and every machine of the cross-
// predictor grid (internal/experiments.PredictorMachines), exports the
// timing runs as a canonical RunRecord report, and requires the bytes to
// match the committed golden. Any unintended change to a prediction
// machine's timing, accounting, or record encoding trips this stage.
//
// Usage:
//
//	go run ./scripts/predsmoke            # compare against the golden
//	go run ./scripts/predsmoke -update    # regenerate the golden
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	var (
		ref    = flag.String("ref", filepath.Join("scripts", "predsmoke", "golden.json"), "committed golden report")
		update = flag.Bool("update", false, "rewrite the golden instead of comparing")
	)
	flag.Parse()

	data, err := report()
	if err != nil {
		fatal(err)
	}
	if *update {
		if err := os.WriteFile(*ref, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("predsmoke: golden rewritten (%d bytes)\n", len(data))
		return
	}
	want, err := os.ReadFile(*ref)
	if err != nil {
		fatal(fmt.Errorf("%w (run with -update to create the golden)", err))
	}
	if !bytes.Equal(data, want) {
		fatal(fmt.Errorf("report differs from %s (%d vs %d bytes); if the change is intended, regenerate with -update and commit", *ref, len(data), len(want)))
	}
	fmt.Printf("predsmoke: report matches golden (%d bytes)\n", len(data))
}

// report simulates the smoke grid and encodes the canonical report. The
// Go toolchain version is cleared so the golden survives toolchain bumps;
// everything else in the report is already deterministic (see
// internal/experiments TestReportDeterminism).
func report() ([]byte, error) {
	s := experiments.NewSuite()
	machines := append([]experiments.Machine{experiments.MBase32}, experiments.PredictorMachines()...)
	for _, name := range []string{"queens", "fir"} {
		w, err := workload.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, m := range machines {
			if _, err := s.Timing(w, "fac", m); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, m, err)
			}
		}
	}
	rep := s.Report("scripts/predsmoke")
	rep.Go = ""
	return rep.Encode()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "predsmoke:", err)
	os.Exit(1)
}
