// Command benchsmoke validates a freshly measured BENCH_pipeline.json
// against the committed perf-trajectory artifact. CI runs BenchmarkPipeline
// with -benchtime=1x and BENCH_OUT pointed at a scratch file, then invokes
//
//	go run ./scripts/benchsmoke -ref BENCH_pipeline.json -new <scratch>
//
// which fails when the fresh report is malformed (wrong schema, no
// records, missing throughput metric) or when measured simulator
// throughput regressed more than -max-regression (default 20%) below the
// committed value. The committed artifact is only ever regenerated
// deliberately (see docs/PERFORMANCE.md); this gate catches accidental
// slowdowns and schema breakage without touching it.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	ref := flag.String("ref", "BENCH_pipeline.json", "committed perf-trajectory artifact")
	fresh := flag.String("new", "", "freshly measured report (required)")
	maxReg := flag.Float64("max-regression", 0.20, "maximum tolerated relative throughput drop")
	flag.Parse()
	if *fresh == "" {
		fatal(fmt.Errorf("-new is required"))
	}

	refRep, err := load(*ref)
	if err != nil {
		fatal(fmt.Errorf("ref %s: %w", *ref, err))
	}
	newRep, err := load(*fresh)
	if err != nil {
		fatal(fmt.Errorf("new %s: %w", *fresh, err))
	}

	refTp, err := throughput(refRep)
	if err != nil {
		fatal(fmt.Errorf("ref %s: %w", *ref, err))
	}
	newTp, err := throughput(newRep)
	if err != nil {
		fatal(fmt.Errorf("new %s: %w", *fresh, err))
	}

	// The simulated timing in the fresh records must match the committed
	// ones exactly: throughput work must never change simulator results.
	// (obs.Diff treats delta >= tolerance as a finding, so an exact-match
	// gate needs an epsilon above zero.)
	if diffs := obs.Diff(refRep, newRep, 1e-12); len(diffs) > 0 {
		for _, d := range diffs {
			fmt.Fprintln(os.Stderr, "benchsmoke:", d)
		}
		fatal(fmt.Errorf("%d simulated-timing difference(s) vs %s", len(diffs), *ref))
	}

	drop := (refTp - newTp) / refTp
	fmt.Printf("benchsmoke: throughput %.2f Mcycles/s (committed %.2f, change %+.1f%%)\n",
		newTp, refTp, -100*drop)
	if drop > *maxReg {
		fatal(fmt.Errorf("throughput regressed %.1f%% (max %.0f%%): %.2f -> %.2f Mcycles/s",
			100*drop, 100**maxReg, refTp, newTp))
	}
}

func load(path string) (*obs.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep, err := obs.DecodeReport(data)
	if err != nil {
		return nil, err
	}
	if len(rep.Records) == 0 {
		return nil, fmt.Errorf("report has no records")
	}
	return rep, nil
}

func throughput(r *obs.Report) (float64, error) {
	tp, ok := r.Metrics["mcycles_per_sec"]
	if !ok || tp <= 0 {
		return 0, fmt.Errorf("missing or non-positive mcycles_per_sec metric")
	}
	return tp, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsmoke:", err)
	os.Exit(1)
}
